"""Ablation: scoring overhead.

The scoring framework (Section 3) attaches per-tuple scores and per-operator
transformations.  This ablation measures the overhead of TF-IDF and
probabilistic score propagation relative to unscored evaluation, for the
merge-based BOOL engine and for the materialising COMP engine (which
propagates scores through every algebra operator).

Run with ``pytest benchmarks/bench_ablation_scoring.py --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import workload_queries
from repro.engine.bool_engine import BoolEngine
from repro.engine.naive_engine import NaiveCompEngine
from repro.scoring import ProbabilisticScoring, TfIdfScoring

from support import QUERY_TOKENS

SCORING = [("unscored", None), ("tfidf", TfIdfScoring), ("probabilistic", ProbabilisticScoring)]


@pytest.mark.parametrize("label, model_cls", SCORING, ids=[s[0] for s in SCORING])
def test_ablation_bool_engine_scoring(benchmark, default_index, label, model_cls):
    query = workload_queries(QUERY_TOKENS, 3, 0)["BOOL"]
    model = model_cls(default_index.statistics) if model_cls else None
    engine = BoolEngine(default_index, scoring=model)
    benchmark.group = "Ablation: scoring overhead | BOOL merge engine"
    if model is None:
        benchmark(engine.evaluate, query)
    else:
        benchmark(engine.evaluate_scored, query)
    benchmark.extra_info["scoring"] = label


@pytest.mark.parametrize("label, model_cls", SCORING, ids=[s[0] for s in SCORING])
def test_ablation_comp_engine_scoring(benchmark, default_index, label, model_cls):
    query = workload_queries(QUERY_TOKENS, 3, 2)["POSITIVE"]
    model = model_cls(default_index.statistics) if model_cls else None
    engine = NaiveCompEngine(default_index, scoring=model)
    benchmark.group = "Ablation: scoring overhead | naive COMP engine"
    benchmark(engine.evaluate_full, query)
    benchmark.extra_info["scoring"] = label
