"""Benchmark: packed mmap segments and multi-process scatter vs threads.

Two measurements on the 12k-node synthetic corpus:

1. **Cold start** -- building an in-memory :class:`InvertedIndex` from the
   collection (every posting materialised as Python objects) vs opening the
   same index as a packed v4 file with :class:`PackedInvertedIndex.open`
   (magic + header only; columns stay on mmap'd pages until touched).
   Reported: wall-clock load time, resident-memory delta and the packed
   file size -- the packed path must not deserialise the payload.

2. **Scatter throughput** -- ``ScatterGatherExecutor`` with the thread pool
   vs ``workers="process"`` running the same no-cache batched BOOL workload
   at several shard counts.  Thread workers share one GIL, so per-shard
   evaluation serialises; process workers evaluate truly in parallel
   against mmap'd spill files (pages shared via the OS cache) and ship back
   only exact best-k prefixes.  Expect the process pool to win at >= 4
   shards on a multi-core host; on a single-core host it can only lose
   (same serial compute plus IPC), which the report makes visible via the
   ``cpus`` line.

Every process-pool result is verified byte-identical (ids, scores, order)
to the thread-pool result before a row is reported -- the benchmark doubles
as an equivalence check at benchmark scale, like ``bench_topk.py``.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_mmap_scatter.py --nodes 12000

or at smoke scale (used by CI)::

    PYTHONPATH=src python benchmarks/bench_mmap_scatter.py --quick
"""

from __future__ import annotations

import argparse
import gc
import os
import tempfile
from pathlib import Path

from support import best_of

from repro.bench.workload import bool_query
from repro.cluster import ScatterGatherExecutor, ShardedIndex
from repro.corpus.synthetic import DEFAULT_QUERY_TOKENS, generate_inex_like_collection
from repro.index.inverted_index import InvertedIndex
from repro.index.packed_index import PackedInvertedIndex, save_packed_index


def resident_bytes() -> int | None:
    """Current resident set size, or ``None`` when unavailable."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    try:
        import resource

        # ru_maxrss is a high-water mark (kB on Linux) -- a usable fallback
        # for the "did we page the whole file in" question, not a live RSS.
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:
        return None


def _fmt_bytes(value: int | None) -> str:
    if value is None:
        return "n/a"
    return f"{value / (1024 * 1024):.1f} MiB"


def build_queries() -> list[object]:
    """Broad batched BOOL shapes over the planted workload tokens."""
    planted = list(DEFAULT_QUERY_TOKENS[:4])
    dense = ["w00000", "w00001"]
    shapes = [
        planted[:2],
        planted[1:3],
        planted[:3],
        planted[2:4],
        dense,
        [planted[0], dense[0]],
    ]
    return [bool_query(tokens) for tokens in shapes]


def bench_cold_start(collection, spool: Path) -> dict[str, object]:
    """In-memory build vs packed mmap open (load time, RSS delta, size)."""
    gc.collect()
    rss_before_build = resident_bytes()

    def build() -> InvertedIndex:
        index = InvertedIndex(collection)
        index.posting_lists()  # materialise, as any query path would
        return index

    # Cold starts are one-shot by definition: a repeat would measure warm
    # page caches and interning, not the start-up cost being reported.
    build_seconds, memory_index = best_of(build, repeats=1, warmup=0)
    rss_after_build = resident_bytes()

    path = spool / "cold-start.seg"
    save_packed_index(memory_index, path)
    file_bytes = path.stat().st_size

    del memory_index
    gc.collect()
    rss_before_open = resident_bytes()
    open_seconds, packed_index = best_of(
        lambda: PackedInvertedIndex.open(path), repeats=1, warmup=0
    )
    rss_after_open = resident_bytes()
    packed_index.close()

    def _delta(before, after):
        if before is None or after is None:
            return None
        return max(0, after - before)

    return {
        "build_ms": build_seconds * 1e3,
        "open_ms": open_seconds * 1e3,
        "file_bytes": file_bytes,
        "build_rss_delta": _delta(rss_before_build, rss_after_build),
        "open_rss_delta": _delta(rss_before_open, rss_after_open),
    }


def _rows_of(results) -> list[tuple]:
    return [(tuple(r.node_ids), tuple(r.ranked())) for r in results]


def bench_scatter(
    collection, shard_counts, top_k: int, repeats: int, spool: Path
) -> list[dict[str, object]]:
    queries = build_queries()
    rows = []
    for shards in shard_counts:
        timings = {}
        reference_rows = None
        for workers in ("thread", "process"):
            kwargs = {"scoring": "tfidf", "cache_size": None}
            if workers == "process":
                kwargs.update(workers="process", spool_dir=spool / f"s{shards}")
            executor = ScatterGatherExecutor(
                ShardedIndex(collection, shards), **kwargs
            )
            try:
                # Warm-up: spill + pool spawn (process), caches and interning
                # (both).  Measures steady-state serving, not cold start.
                warm = executor.execute_many(queries, top_k=top_k)
                if reference_rows is None:
                    reference_rows = _rows_of(warm)
                elif _rows_of(warm) != reference_rows:
                    raise AssertionError(
                        f"process results diverge from thread results at "
                        f"{shards} shard(s)"
                    )
                best, _ = best_of(
                    lambda: executor.execute_many(queries, top_k=top_k), repeats
                )
                timings[workers] = best
            finally:
                executor.close()
        rows.append(
            {
                "shards": shards,
                "queries": len(queries),
                "thread_ms": timings["thread"] * 1e3,
                "process_ms": timings["process"] * 1e3,
                "speedup": timings["thread"] / max(timings["process"], 1e-12),
            }
        )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=12_000)
    parser.add_argument("--tokens-per-node", type=int, default=60)
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4],
        help="shard counts to measure (default: 1 2 4)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke scale (600 nodes, 2 repeats, shards 1 2)",
    )
    args = parser.parse_args()
    if args.quick:
        args.nodes, args.repeats = 600, 2
        args.shards = [s for s in args.shards if s <= 2] or [1, 2]

    collection = generate_inex_like_collection(
        num_nodes=args.nodes, tokens_per_node=args.tokens_per_node,
        pos_per_entry=3,
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-mmap-") as tmp:
        spool = Path(tmp)
        cold = bench_cold_start(collection, spool)
        rows = bench_scatter(
            collection, args.shards, args.top_k, args.repeats, spool
        )

    print(
        f"mmap + process scatter benchmark: {args.nodes} nodes, "
        f"top_k={args.top_k}, best of {args.repeats}, "
        f"cpus={os.cpu_count()}"
    )
    print("\ncold start (in-memory build vs packed mmap open):")
    print(f"  in-memory build : {cold['build_ms']:>9.2f} ms  "
          f"(+{_fmt_bytes(cold['build_rss_delta'])} RSS)")
    print(f"  packed mmap open: {cold['open_ms']:>9.2f} ms  "
          f"(+{_fmt_bytes(cold['open_rss_delta'])} RSS, "
          f"file {_fmt_bytes(cold['file_bytes'])})")
    if cold["open_ms"] > 0:
        print(f"  open speedup    : {cold['build_ms'] / cold['open_ms']:>9.1f}x")

    print(
        f"\nno-cache batched BOOL scatter "
        f"({rows[0]['queries']} queries per batch):"
    )
    print(f"{'shards':>6} {'thread':>12} {'process':>12} {'speedup':>9}")
    for row in rows:
        print(
            f"{row['shards']:>6} {row['thread_ms']:>10.2f}ms "
            f"{row['process_ms']:>10.2f}ms {row['speedup']:>8.2f}x"
        )
    print(
        "\nthread    = ThreadPoolExecutor scatter (GIL-serialised per-shard "
        "evaluation);\nprocess   = ProcessPoolExecutor over mmap'd packed "
        "spill files (results\n            verified byte-identical to the "
        "thread path before reporting).\nspeedup > 1 needs real cores: on a "
        "single-cpu host the process pool pays\nIPC on top of the same "
        "serial compute and can only report < 1."
    )


if __name__ == "__main__":
    main()
