"""Benchmark: score-bounded top-k pushdown vs rank-everything-then-truncate.

The pre-pushdown ranked path scored and sorted **every** matching node and
only then sliced ``ranked[:top_k]`` -- a ``top_k=10`` query over a broad
conjunction paid the full-corpus scoring bill.  This benchmark replays that
exact behaviour (a full ``Executor.execute`` followed by a slice) against
the pushdown (``Executor.execute(..., top_k=k)``, which feeds matches
through the score-bounded heap of :mod:`repro.engine.topk`) on the 12k-node
synthetic corpus, for BOOL and PPRED queries under both scoring backends,
single-index and scatter-gather over 4 shards.

Every pushdown ranking is verified to be the exact prefix of the full one
before a row is reported -- the benchmark doubles as an end-to-end
equivalence check at benchmark scale.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_topk.py --nodes 12000

or at smoke scale (used by CI)::

    PYTHONPATH=src python benchmarks/bench_topk.py --quick
"""

from __future__ import annotations

import argparse

from support import best_of

from repro.bench.workload import bool_query, predicate_query, WorkloadSpec
from repro.cluster import ScatterGatherExecutor, ShardedIndex
from repro.corpus.synthetic import DEFAULT_QUERY_TOKENS, generate_inex_like_collection
from repro.engine.executor import Executor
from repro.index.inverted_index import InvertedIndex
from repro.scoring.base import get_model


def build_queries() -> list[tuple[str, object]]:
    """Broad BOOL and PPRED shapes: many matches, so ranking dominates.

    The planted query tokens are the corpus's standard workload (what the
    paper harness sweeps); the ``dense`` row conjoins the two most frequent
    Zipf-head background tokens -- the adversarial case where every document
    sits near the per-token occurrence cap, the bound cannot discriminate
    and the collector's give-up heuristic must keep the overhead flat.
    """
    planted = list(DEFAULT_QUERY_TOKENS[:3])
    dense = ["w00000", "w00001"]
    return [
        ("BOOL/planted2", bool_query(planted[:2])),
        ("BOOL/planted3", bool_query(planted)),
        ("BOOL/dense", bool_query(dense)),
        (
            "PPRED/planted",
            predicate_query(
                WorkloadSpec(
                    num_tokens=2,
                    num_predicates=1,
                    predicate_kind="positive",
                    tokens=planted[:2],
                )
            ),
        ),
    ]


def run(
    nodes: int,
    tokens_per_node: int,
    top_k: int,
    repeats: int,
    shard_counts: list[int],
    access_mode: str = "fast",
) -> list[dict[str, object]]:
    collection = generate_inex_like_collection(
        num_nodes=nodes, tokens_per_node=tokens_per_node, pos_per_entry=3
    )
    queries = build_queries()
    rows: list[dict[str, object]] = []
    for shards in shard_counts:
        for scoring in ("tfidf", "probabilistic"):
            if shards == 1:
                index = InvertedIndex(collection)
                executor = Executor(
                    index,
                    scoring=get_model(scoring, index.statistics),
                    access_mode=access_mode,
                )
            else:
                executor = ScatterGatherExecutor(
                    ShardedIndex(collection, shards),
                    scoring=scoring,
                    access_mode=access_mode,
                    cache_size=None,  # measure execution, not memoisation
                )
            for label, query in queries:
                # Warm-up: posting decode caches, node norms, interning.
                executor.execute(query, top_k=top_k)
                full_seconds, full = best_of(
                    lambda: executor.execute(query), repeats
                )
                truncate_seconds, _ = best_of(
                    lambda: full.ranked()[:top_k], repeats
                )
                pushdown_seconds, pruned = best_of(
                    lambda: executor.execute(query, top_k=top_k), repeats
                )
                expected = full.ranked()[:top_k]
                got = pruned.ranked()
                if got != expected:
                    raise AssertionError(
                        f"pushdown diverges for {label} ({scoring}, "
                        f"{shards} shard(s)): {got!r} != {expected!r}"
                    )
                baseline = full_seconds + truncate_seconds
                rows.append(
                    {
                        "shards": shards,
                        "scoring": scoring,
                        "query": label,
                        "matches": len(full.node_ids),
                        "baseline_ms": baseline * 1e3,
                        "pushdown_ms": pushdown_seconds * 1e3,
                        "speedup": baseline / max(pushdown_seconds, 1e-12),
                    }
                )
            if shards > 1:
                executor.close()
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=12_000)
    parser.add_argument("--tokens-per-node", type=int, default=60)
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 4],
        help="shard counts to measure (default: 1 4)",
    )
    parser.add_argument(
        "--access-mode", default="fast", choices=["paper", "fast"]
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke scale (600 nodes, 2 repeats)",
    )
    args = parser.parse_args()
    if args.quick:
        args.nodes, args.repeats = 600, 2

    rows = run(
        args.nodes,
        args.tokens_per_node,
        args.top_k,
        args.repeats,
        args.shards,
        args.access_mode,
    )
    print(
        f"top-k pushdown benchmark: {args.nodes} nodes, top_k={args.top_k}, "
        f"access mode {args.access_mode} (best of {args.repeats})"
    )
    print(
        f"{'shards':>6} {'scoring':>13} {'query':>12} {'matches':>8} "
        f"{'rank-all':>10} {'pushdown':>10} {'speedup':>8}"
    )
    for row in rows:
        print(
            f"{row['shards']:>6} {row['scoring']:>13} {row['query']:>12} "
            f"{row['matches']:>8} {row['baseline_ms']:>8.2f}ms "
            f"{row['pushdown_ms']:>8.2f}ms {row['speedup']:>7.2f}x"
        )
    print(
        "\nrank-all  = full evaluation + scoring of every match, sorted, "
        "then sliced\n            to top_k (the pre-pushdown behaviour);\n"
        "pushdown  = the same query with top_k pushed into execution: the "
        "bounded\n            heap skips scoring nodes whose upper bound "
        "cannot reach the\n            current floor.  Rankings verified "
        "identical before reporting."
    )


if __name__ == "__main__":
    main()
