"""Section 6.1 summary: the qualitative ordering BOOL ≼ PPRED ≼ NPRED ≼ COMP.

This benchmark runs the default experiment point (3 tokens, 2 predicates) for
every series and, in addition to the timings, *asserts* the paper's
qualitative claims with generous tolerances:

* PPRED achieves predicate expressiveness at a marginally larger cost than
  BOOL (here: within 50x -- the paper says "marginally"; pure-Python operator
  overhead is larger than C++ but stays orders of magnitude under COMP);
* NPRED is faster than COMP on negative-predicate queries;
* PPRED is faster than COMP on positive-predicate queries.

Run with ``pytest benchmarks/bench_summary_ordering.py --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import workload_queries

from support import QUERY_TOKENS, SERIES, best_of, make_engine

NUM_TOKENS = 3
NUM_PREDICATES = 2


def _best_time(engine, query, repeats: int = 3) -> float:
    seconds, _ = best_of(lambda: engine.evaluate(query), repeats)
    return seconds


@pytest.mark.parametrize(
    "series, engine_name, variant", SERIES, ids=[name for name, _, _ in SERIES]
)
def test_summary_series_timing(benchmark, default_index, series, engine_name, variant):
    queries = workload_queries(QUERY_TOKENS, NUM_TOKENS, NUM_PREDICATES)
    query = queries[variant]
    engine = make_engine(engine_name, default_index)
    benchmark.group = "Section 6.1 | default experiment point"
    matches = benchmark(engine.evaluate, query)
    benchmark.extra_info["series"] = series
    benchmark.extra_info["matches"] = len(matches)


def test_summary_qualitative_ordering_holds(default_index):
    queries = workload_queries(QUERY_TOKENS, NUM_TOKENS, NUM_PREDICATES)
    times = {
        "BOOL": _best_time(make_engine("bool", default_index), queries["BOOL"]),
        "PPRED-POS": _best_time(make_engine("ppred", default_index), queries["POSITIVE"]),
        "NPRED-POS": _best_time(make_engine("npred", default_index), queries["POSITIVE"]),
        "NPRED-NEG": _best_time(make_engine("npred", default_index), queries["NEGATIVE"]),
        "COMP-POS": _best_time(make_engine("comp", default_index), queries["POSITIVE"]),
        "COMP-NEG": _best_time(make_engine("comp", default_index), queries["NEGATIVE"]),
    }
    # The headline ordering of Section 6.1.
    assert times["PPRED-POS"] <= times["COMP-POS"], times
    assert times["NPRED-NEG"] <= times["COMP-NEG"], times
    assert times["BOOL"] <= times["COMP-POS"], times
    # PPRED buys predicates at a bounded overhead over BOOL.
    assert times["PPRED-POS"] <= times["BOOL"] * 50, times
