"""Figure 3: the complexity hierarchy, measured.

Figure 3 of the paper is analytic (operation-count bounds per language).
This benchmark measures the corresponding *implemented* algorithms on the
same query over the same data, so the report shows the measured hierarchy

    BOOL  <=  PPRED  <=  NPRED  <=  COMP

next to the analytic bounds (attached as ``extra_info``).  BOOL is measured
on the keyword projection of the query (it cannot express the predicates).

Run with ``pytest benchmarks/bench_fig3_complexity_hierarchy.py --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.bench.complexity import HIERARCHY, QueryParameters
from repro.bench.workload import workload_queries
from repro.languages import ast

from support import QUERY_TOKENS, make_engine

NUM_TOKENS = 3
NUM_PREDICATES = 2

CASES = [
    ("BOOL", "bool", "BOOL"),
    ("PPRED", "ppred", "POSITIVE"),
    ("NPRED", "npred", "NEGATIVE"),
    ("COMP", "comp", "NEGATIVE"),
]


@pytest.mark.parametrize(
    "language, engine_name, variant", CASES, ids=[case[0] for case in CASES]
)
def test_fig3_measured_hierarchy(benchmark, default_index, language, engine_name, variant):
    queries = workload_queries(QUERY_TOKENS, NUM_TOKENS, NUM_PREDICATES)
    query = queries[variant]
    engine = make_engine(engine_name, default_index)
    benchmark.group = "Figure 3 | measured hierarchy (same data, 3 tokens, 2 predicates)"

    matches = benchmark(engine.evaluate, query)

    measures = ast.query_measures(query)
    params = default_index.statistics.complexity_parameters()
    bound_name = "BOOL-NONEG" if language == "BOOL" else language
    analytic = HIERARCHY[bound_name](
        params,
        QueryParameters(
            toks_q=measures["toks_Q"],
            preds_q=measures["preds_Q"],
            ops_q=measures["ops_Q"],
        ),
    )
    benchmark.extra_info["matches"] = len(matches)
    benchmark.extra_info["analytic_bound_operations"] = analytic
    benchmark.extra_info["data_parameters"] = params.as_dict()
