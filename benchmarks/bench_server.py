"""Benchmark: HTTP serving throughput -- micro-batching vs per-request dispatch.

A closed-loop load generator drives :class:`repro.server.QueryServer` over
real localhost sockets: ``--clients`` threads each hold one keep-alive
connection and fire the next request as soon as the previous answer lands
(closed loop -- no open-loop arrival process, so the server is never
flattered by queueing it didn't absorb).

Two server configurations run the same workload:

* **batching on** -- the shipped defaults (``max_batch_size=32``, a couple
  of milliseconds of linger), where concurrent requests coalesce into
  single ``search_many`` calls that share one plan cache and one cursor
  factory per batch;
* **batching off** -- ``max_batch_size=1``, ``max_linger_ms=0``: every
  request is its own engine call, the way a naive handler would do it.

**Equality before speed.**  Before any timing, every distinct query in the
workload is fetched once over HTTP and compared against a direct
``engine.search`` -- ids, scores (as serialised, which is exact: JSON
round-trips Python floats through ``repr``) and order must match
bit-identically, otherwise the benchmark aborts.  A throughput number for a
server returning different answers would be meaningless.

**Honest caveat.**  The engine is pure Python behind one GIL and the
dispatcher runs batches on a single engine thread, so batching wins come
from amortised dispatch, plan-cache hits and fewer event-loop round-trips
-- not from parallel evaluation.  On a single-core CI runner the gap is
therefore modest; the report prints the CPU count so the context is
visible.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_server.py --nodes 6000 --clients 8

or at smoke scale (used by CI)::

    PYTHONPATH=src python benchmarks/bench_server.py --quick
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import os
import threading
import time
import urllib.parse

from repro.corpus.synthetic import DEFAULT_QUERY_TOKENS, generate_inex_like_collection
from repro.core.engine import FullTextEngine
from repro.server import QueryServer, ServerConfig
from repro.telemetry.latency import percentile


def build_workload() -> list[str]:
    """A mixed BOOL/DIST workload over the planted query tokens."""
    planted = list(DEFAULT_QUERY_TOKENS)
    return [
        f"'{planted[0]}'",
        f"'{planted[0]}' AND '{planted[1]}'",
        f"'{planted[2]}' OR '{planted[3]}'",
        f"'{planted[1]}' AND ('{planted[4]}' OR '{planted[0]}')",
        f"dist('{planted[0]}', '{planted[1]}', 8)",
        f"'{planted[5]}' AND '{planted[1]}'",
    ]


class ServerThread:
    """A :class:`QueryServer` on its own event loop in a daemon thread."""

    def __init__(self, engine, config: ServerConfig) -> None:
        config.port = 0
        self.server = QueryServer(engine, config)
        self.loop: asyncio.AbstractEventLoop | None = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            await self.server.start()
            self.loop = asyncio.get_running_loop()
            self._started.set()
            await self.server.serve_until_signalled()

        asyncio.run(main())

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        if not self._started.wait(10):
            raise RuntimeError("server failed to start")
        return self

    def __exit__(self, *exc_info) -> None:
        future = asyncio.run_coroutine_threadsafe(self.server.shutdown(), self.loop)
        future.result(timeout=30)
        self._thread.join(timeout=30)

    @property
    def port(self) -> int:
        return self.server.port


def fetch(conn: http.client.HTTPConnection, query: str, top_k: int) -> dict:
    target = f"/search?q={urllib.parse.quote(query)}&top_k={top_k}"
    conn.request("GET", target)
    response = conn.getresponse()
    payload = json.loads(response.read())
    if response.status != 200:
        raise RuntimeError(f"{query!r} -> HTTP {response.status}: {payload}")
    return payload


def verify_equality(port: int, engine, workload: list[str], top_k: int) -> None:
    """Abort unless HTTP answers are bit-identical to direct engine calls."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        for query in workload:
            served = [
                (row["node_id"], row["score"])
                for row in fetch(conn, query, top_k)["results"]
            ]
            direct = [
                # json round-trips floats through repr: exact comparison.
                (result.node_id, json.loads(json.dumps(result.score)))
                for result in engine.search(query, top_k=top_k)
            ]
            if served != direct:
                raise SystemExit(
                    f"EQUALITY FAILURE for {query!r}: served {served[:3]}... "
                    f"!= direct {direct[:3]}..."
                )
            if not served:
                raise SystemExit(f"workload query {query!r} matched nothing")
    finally:
        conn.close()


def run_load(
    port: int, workload: list[str], clients: int, requests_per_client: int, top_k: int
) -> tuple[float, list[float]]:
    """Closed-loop load; returns (elapsed seconds, per-request latencies ms)."""
    latencies: list[list[float]] = [[] for _ in range(clients)]
    barrier = threading.Barrier(clients + 1)
    errors: list[BaseException] = []

    def client(slot: int) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            barrier.wait()
            for i in range(requests_per_client):
                query = workload[(slot + i) % len(workload)]
                started = time.perf_counter()
                fetch(conn, query, top_k)
                latencies[slot].append((time.perf_counter() - started) * 1000.0)
        except BaseException as exc:  # surface failures, don't hang the bench
            errors.append(exc)
        finally:
            conn.close()

    threads = [threading.Thread(target=client, args=(slot,)) for slot in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise SystemExit(f"load generation failed: {errors[0]!r}")
    return elapsed, sorted(value for per in latencies for value in per)


def bench_config(
    engine,
    workload: list[str],
    *,
    label: str,
    config: ServerConfig,
    clients: int,
    requests_per_client: int,
    top_k: int,
) -> dict:
    with ServerThread(engine, config) as server:
        verify_equality(server.port, engine, workload, top_k)
        # Warmup: fills the plan cache the same way for both configurations.
        run_load(server.port, workload, clients, max(2, requests_per_client // 10), top_k)
        elapsed, latencies = run_load(
            server.port, workload, clients, requests_per_client, top_k
        )
        batching = server.server.dispatcher.stats()
    total = clients * requests_per_client
    return {
        "label": label,
        "throughput": total / elapsed,
        "p50": percentile(latencies, 0.50),
        "p95": percentile(latencies, 0.95),
        "mean_batch": batching["mean_batch_size"],
        "max_batch": batching["max_batch_size_seen"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=6000)
    parser.add_argument("--tokens-per-node", type=int, default=60)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests-per-client", type=int, default=50)
    parser.add_argument("--top-k", type=int, default=10)
    parser.add_argument(
        "--quick", action="store_true", help="smoke scale for CI (small corpus)"
    )
    args = parser.parse_args()
    if args.quick:
        args.nodes = 600
        args.clients = 8
        args.requests_per_client = 25

    collection = generate_inex_like_collection(
        num_nodes=args.nodes, tokens_per_node=args.tokens_per_node, pos_per_entry=2
    )
    engine = FullTextEngine.from_collection(
        collection, scoring="tfidf", access_mode="fast"
    )
    workload = build_workload()
    total = args.clients * args.requests_per_client
    print(
        f"serving benchmark: {args.nodes} nodes, {args.clients} closed-loop "
        f"client(s) x {args.requests_per_client} request(s), top_k={args.top_k}"
    )
    print(
        f"  verified: {len(workload)}/{len(workload)} workload queries "
        f"bit-identical over HTTP before timing"
    )
    try:
        rows = [
            bench_config(
                engine,
                workload,
                label="batching on  (batch<=32, linger 2 ms)",
                config=ServerConfig(max_batch_size=32, max_linger_ms=2.0),
                clients=args.clients,
                requests_per_client=args.requests_per_client,
                top_k=args.top_k,
            ),
            bench_config(
                engine,
                workload,
                label="batching off (batch<=1,  linger 0 ms)",
                config=ServerConfig(max_batch_size=1, max_linger_ms=0.0),
                clients=args.clients,
                requests_per_client=args.requests_per_client,
                top_k=args.top_k,
            ),
        ]
    finally:
        engine.close()
    for row in rows:
        batch_note = (
            f"  mean batch={row['mean_batch']:.1f} (max {row['max_batch']})"
            if row["max_batch"] > 1
            else ""
        )
        print(
            f"  {row['label']}: {row['throughput']:8.1f} req/s  "
            f"p50={row['p50']:.2f} ms p95={row['p95']:.2f} ms{batch_note}"
        )
    speedup = rows[0]["throughput"] / rows[1]["throughput"]
    print(f"  batching speedup: {speedup:.2f}x on {total} request(s)")
    print(
        f"  note: pure-Python engine behind one GIL (cpus={os.cpu_count()}); "
        f"the win is amortised dispatch + shared plan cache, not parallel "
        f"evaluation -- expect a larger gap with more concurrent clients."
    )


if __name__ == "__main__":
    main()
