"""Figure 8: evaluation time vs positions per inverted-list entry.

The paper plants query tokens with at most 5 / 25 / 125 positions per entry;
this suite uses 2 / 4 / 8 (pure Python).  Increasing the positions per entry
directly inflates the per-node join size, so COMP degrades fastest while
BOOL (which never looks at positions) stays flat and PPRED/NPRED grow
linearly in the number of positions scanned.

Run with ``pytest benchmarks/bench_fig8_positions_per_entry.py --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import workload_queries

from support import QUERY_TOKENS, SERIES, make_engine

POS_PER_ENTRY = (2, 4, 8)
NUM_TOKENS = 3
NUM_PREDICATES = 2


@pytest.mark.parametrize("pos_per_entry", POS_PER_ENTRY)
@pytest.mark.parametrize(
    "series, engine_name, variant", SERIES, ids=[name for name, _, _ in SERIES]
)
def test_fig8_positions_per_entry(
    benchmark, indexes_by_pos_per_entry, pos_per_entry, series, engine_name, variant
):
    index = indexes_by_pos_per_entry[pos_per_entry]
    queries = workload_queries(QUERY_TOKENS, NUM_TOKENS, NUM_PREDICATES)
    query = queries[variant]
    engine = make_engine(engine_name, index)
    benchmark.group = f"Figure 8 | positions per entry = {pos_per_entry}"
    matches = benchmark(engine.evaluate, query)
    benchmark.extra_info["series"] = series
    benchmark.extra_info["matches"] = len(matches)
    benchmark.extra_info["pos_per_entry"] = pos_per_entry
