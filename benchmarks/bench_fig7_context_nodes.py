"""Figure 7: evaluation time vs number of context nodes (data scalability).

The paper uses 2500 / 6000 / 10000 INEX documents; this suite scales the same
sweep down to 100 / 300 / 600 synthetic nodes (the shape is what matters:
BOOL and PPRED scale best -- slow linear growth; NPRED grows linearly too;
COMP grows fastest because every additional node pays the per-node cartesian
product of its query-token positions).

Run with ``pytest benchmarks/bench_fig7_context_nodes.py --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import workload_queries

from support import QUERY_TOKENS, SERIES, make_engine

NODE_COUNTS = (100, 300, 600)
NUM_TOKENS = 3
NUM_PREDICATES = 2


@pytest.mark.parametrize("num_nodes", NODE_COUNTS)
@pytest.mark.parametrize(
    "series, engine_name, variant", SERIES, ids=[name for name, _, _ in SERIES]
)
def test_fig7_context_nodes(
    benchmark, indexes_by_node_count, num_nodes, series, engine_name, variant
):
    index = indexes_by_node_count[num_nodes]
    queries = workload_queries(QUERY_TOKENS, NUM_TOKENS, NUM_PREDICATES)
    query = queries[variant]
    engine = make_engine(engine_name, index)
    benchmark.group = f"Figure 7 | context nodes = {num_nodes}"
    matches = benchmark(engine.evaluate, query)
    benchmark.extra_info["series"] = series
    benchmark.extra_info["matches"] = len(matches)
    benchmark.extra_info["cnodes"] = num_nodes
