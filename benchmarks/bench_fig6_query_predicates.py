"""Figure 6: evaluation time vs number of query predicates.

The paper fixes three query tokens and varies the number of predicates from
0 to 4 (default 2).  Expected shape: BOOL is flat (it ignores predicates);
PPRED grows slowly and linearly; NPRED-NEG grows with the number of
permutation threads; COMP pays the per-node cartesian product regardless and
is the slowest, especially with negative (highly selective) predicates.

Run with ``pytest benchmarks/bench_fig6_query_predicates.py --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import workload_queries

from support import QUERY_TOKENS, SERIES, make_engine

PREDICATE_COUNTS = (0, 1, 2, 3, 4)
NUM_TOKENS = 3


@pytest.mark.parametrize("num_predicates", PREDICATE_COUNTS)
@pytest.mark.parametrize(
    "series, engine_name, variant", SERIES, ids=[name for name, _, _ in SERIES]
)
def test_fig6_query_predicates(
    benchmark, default_index, num_predicates, series, engine_name, variant
):
    queries = workload_queries(QUERY_TOKENS, NUM_TOKENS, num_predicates)
    if variant not in queries:
        pytest.skip("no negative-predicate variant for predicate-free queries")
    query = queries[variant]
    engine = make_engine(engine_name, default_index)
    benchmark.group = f"Figure 6 | query predicates = {num_predicates}"
    matches = benchmark(engine.evaluate, query)
    benchmark.extra_info["series"] = series
    benchmark.extra_info["matches"] = len(matches)
    benchmark.extra_info["toks_Q"] = NUM_TOKENS
    benchmark.extra_info["preds_Q"] = num_predicates
