"""Benchmark guardrail: telemetry must be ~free on the query hot path.

The telemetry design promises two things about cost:

* **Disabled is a pointer test.**  Tracing is ``trace: Span | None`` with
  ``if trace is not None`` guards, and every registry increment hides
  behind ``if REGISTRY.enabled`` -- so with the kill switch off, a query
  runs the same arithmetic it ran before telemetry existed.
* **Enabled is once-per-query.**  Nothing records per cursor operation;
  cursor ops keep accumulating in :class:`~repro.index.cursor.CursorStats`
  (plain Python ints, as the paper harness always did) and fold into the
  registry once per query.

This benchmark replays the fig3-style BOOL workload (the paper's
complexity-hierarchy corpus and planted query tokens) in two states --
registry disabled + no trace, and the default serving state (registry
enabled, no trace) -- interleaved, min-of-N per state, and **fails loudly**
when the default state costs more than the tolerated overhead (2% by
default) over the disabled floor.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_telemetry.py

or at smoke scale (used by CI)::

    PYTHONPATH=src python benchmarks/bench_telemetry.py --quick
"""

from __future__ import annotations

import argparse
import sys

from support import best_of

from repro.bench.workload import bool_query
from repro.core.engine import FullTextEngine
from repro.corpus.synthetic import DEFAULT_QUERY_TOKENS, generate_inex_like_collection
from repro.telemetry.registry import REGISTRY


def build_workload() -> list:
    """Broad BOOL conjunctions over the planted fig3 workload tokens."""
    planted = list(DEFAULT_QUERY_TOKENS[:4])
    dense = ["w00000", "w00001"]
    shapes = [
        bool_query(planted[:2]),
        bool_query(planted[1:3]),
        bool_query(planted[:3]),
        bool_query(planted[2:4]),
        bool_query(dense),
    ]
    return shapes


def run_state(engine, queries, passes: int) -> float:
    """One timed measurement: the whole workload, ``passes`` times over.

    A single pass through the shared timing core: the min-of-N happens in
    :func:`measure`, interleaved across the two registry states.
    """

    def workload() -> None:
        for _ in range(passes):
            for query in queries:
                engine.search(query, top_k=10)

    seconds, _ = best_of(workload, repeats=1, warmup=0)
    return seconds


def measure(engine, queries, passes: int, repeats: int) -> tuple[float, float]:
    """Interleaved min-of-N for (disabled, enabled); interleaving cancels
    drift (thermal, page cache) that back-to-back blocks would absorb
    into whichever state ran second."""
    disabled = float("inf")
    enabled = float("inf")
    # One untimed warm-up pass per state: plan cache, scoring prep, buffers.
    REGISTRY.set_enabled(False)
    run_state(engine, queries, 1)
    REGISTRY.set_enabled(True)
    run_state(engine, queries, 1)
    try:
        for _ in range(repeats):
            REGISTRY.set_enabled(False)
            disabled = min(disabled, run_state(engine, queries, passes))
            REGISTRY.set_enabled(True)
            enabled = min(enabled, run_state(engine, queries, passes))
    finally:
        REGISTRY.set_enabled(True)
    return disabled, enabled


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=6000)
    parser.add_argument("--tokens-per-node", type=int, default=60)
    parser.add_argument("--passes", type=int, default=20,
                        help="workload passes per timed measurement")
    parser.add_argument("--repeats", type=int, default=7,
                        help="timed measurements per state (min wins)")
    parser.add_argument("--max-overhead", type=float, default=2.0,
                        help="tolerated enabled-vs-disabled overhead, percent")
    parser.add_argument("--access-mode", default="fast",
                        choices=["paper", "fast"])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale (1500 nodes, 10 passes)")
    args = parser.parse_args()
    if args.quick:
        args.nodes, args.passes = 1500, 10

    collection = generate_inex_like_collection(
        num_nodes=args.nodes, tokens_per_node=args.tokens_per_node
    )
    engine = FullTextEngine.from_collection(
        collection, scoring="tfidf", access_mode=args.access_mode
    )
    queries = build_workload()
    try:
        disabled, enabled = measure(engine, queries, args.passes, args.repeats)
    finally:
        engine.close()

    overhead = (enabled - disabled) / disabled * 100.0
    per_query_us = disabled / (args.passes * len(queries)) * 1e6
    print(
        f"telemetry overhead benchmark: {args.nodes} nodes, "
        f"{len(queries)} BOOL queries x {args.passes} passes, "
        f"min of {args.repeats}"
    )
    print(f"  disabled (kill switch, no trace): {disabled * 1000.0:8.2f} ms "
          f"({per_query_us:.0f} us/query)")
    print(f"  enabled  (default serving state): {enabled * 1000.0:8.2f} ms")
    print(f"  overhead: {overhead:+.2f}% (budget {args.max_overhead:.1f}%)")
    if overhead > args.max_overhead:
        print(
            f"FAIL: telemetry costs {overhead:.2f}% with metrics enabled, "
            f"over the {args.max_overhead:.1f}% budget",
            file=sys.stderr,
        )
        return 1
    print("OK: telemetry stays within its hot-path budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
