"""Benchmark: sustained ingest + query latency on the live index.

Exercises the live-indexing subsystem (:mod:`repro.segments`) the way a
serving system sees it:

1. **sustained ingest** -- documents stream into a live engine through the
   memtable/WAL write path; reported as docs/sec, with the segment count the
   stream leaves behind;
2. **queries under concurrent ingest** -- a writer thread keeps ingesting
   while the main thread serves a repeating BOOL workload; reported as query
   p50/p95 plus the ingest rate sustained *during* serving;
3. **compaction effect** -- the same query batch before and after a full
   compaction, showing the drop in segment count, per-query cursor
   operations (the k-way-merge overhead), and latency.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_ingest.py --base-docs 4000

or at smoke scale (used by CI)::

    PYTHONPATH=src python benchmarks/bench_ingest.py --quick
"""

from __future__ import annotations

import argparse
import random
import threading
import time

from repro.core.engine import FullTextEngine
from repro.corpus.synthetic import DEFAULT_QUERY_TOKENS, generate_inex_like_collection


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[rank]


def make_documents(count: int, tokens_per_doc: int, seed: int) -> list[str]:
    """Synthetic documents over the same vocabulary as the base corpus.

    Mixes the dense Zipf-head background tokens (``w000NN``) with the rare
    planted query tokens, so the ingested stream keeps extending exactly the
    posting lists the query workload reads.
    """
    rng = random.Random(seed)
    common = [f"w{i:05d}" for i in range(40)]
    planted = list(DEFAULT_QUERY_TOKENS)
    documents = []
    for _ in range(count):
        tokens = [rng.choice(common) for _ in range(tokens_per_doc)]
        if rng.random() < 0.3:
            tokens[rng.randrange(tokens_per_doc)] = rng.choice(planted)
        documents.append(" ".join(tokens))
    return documents


def make_queries(count: int, seed: int) -> list[str]:
    """Repeating two-token BOOL conjunctions (rare AND dense)."""
    rng = random.Random(seed)
    planted = list(DEFAULT_QUERY_TOKENS)
    common = [f"w{i:05d}" for i in range(8)]
    return [
        f"'{rng.choice(planted)}' AND '{rng.choice(common)}'"
        for _ in range(count)
    ]


def run_query_batch(
    engine: FullTextEngine, queries: list[str], repeats: int
) -> tuple[list[float], int]:
    """Latencies (ms) plus total sequential cursor charges for the batch."""
    latencies: list[float] = []
    cursor_ops = 0
    for _ in range(repeats):
        for query in queries:
            started = time.perf_counter()
            results = engine.search(query, top_k=10)
            latencies.append((time.perf_counter() - started) * 1000.0)
            if results.cursor_stats is not None:
                extended = results.cursor_stats.as_extended_dict()
                cursor_ops += (
                    extended["next_entry_calls"]
                    + extended["seek_calls"]
                    + extended["seek_probes"]
                )
    return latencies, cursor_ops


def run(
    base_docs: int,
    ingest_docs: int,
    tokens_per_doc: int,
    queries: int,
    repeats: int,
    flush_threshold: int,
    access_mode: str,
) -> dict[str, object]:
    collection = generate_inex_like_collection(
        num_nodes=base_docs, tokens_per_node=tokens_per_doc, pos_per_entry=3
    )
    engine = FullTextEngine.from_collection(
        collection,
        access_mode=access_mode,
        live=True,
        flush_threshold=flush_threshold,
    )
    documents = make_documents(ingest_docs, tokens_per_doc, seed=42)
    query_batch = make_queries(queries, seed=7)

    # ---- phase 1: sustained ingest, no readers ---------------------------
    started = time.perf_counter()
    for text in documents:
        engine.add_document(text)
    ingest_seconds = time.perf_counter() - started
    segments_after_ingest = len(engine.segment_stats())

    # ---- phase 2: queries under concurrent ingest ------------------------
    stop = threading.Event()
    concurrent_counter = {"docs": 0}
    extra_documents = make_documents(ingest_docs, tokens_per_doc, seed=43)

    def writer() -> None:
        for text in extra_documents:
            if stop.is_set():
                return
            engine.add_document(text)
            concurrent_counter["docs"] += 1
        stop.set()

    thread = threading.Thread(target=writer, name="repro-ingest", daemon=True)
    concurrent_started = time.perf_counter()
    thread.start()
    live_latencies, _ = run_query_batch(engine, query_batch, repeats)
    serving_seconds = time.perf_counter() - concurrent_started
    stop.set()
    thread.join()

    # ---- phase 3: compaction effect --------------------------------------
    pre_latencies, pre_cursor_ops = run_query_batch(engine, query_batch, repeats)
    segments_before_compact = len(engine.segment_stats())
    compact_started = time.perf_counter()
    report = engine.compact()
    compact_seconds = time.perf_counter() - compact_started
    segments_after_compact = len(engine.segment_stats())
    post_latencies, post_cursor_ops = run_query_batch(engine, query_batch, repeats)

    total_queries = queries * repeats
    live_sorted = sorted(live_latencies)
    pre_sorted = sorted(pre_latencies)
    post_sorted = sorted(post_latencies)
    engine.close()
    return {
        "ingest_rate": ingest_docs / max(ingest_seconds, 1e-12),
        "segments_after_ingest": segments_after_ingest,
        "concurrent_rate": concurrent_counter["docs"] / max(serving_seconds, 1e-12),
        "live_p50": _percentile(live_sorted, 0.50),
        "live_p95": _percentile(live_sorted, 0.95),
        "segments_before_compact": segments_before_compact,
        "segments_after_compact": segments_after_compact,
        "compact_seconds": compact_seconds,
        "compact_report": report,
        "pre_p50": _percentile(pre_sorted, 0.50),
        "pre_p95": _percentile(pre_sorted, 0.95),
        "post_p50": _percentile(post_sorted, 0.50),
        "post_p95": _percentile(post_sorted, 0.95),
        "pre_cursor_ops": pre_cursor_ops / total_queries,
        "post_cursor_ops": post_cursor_ops / total_queries,
        "total_queries": total_queries,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--base-docs", type=int, default=4_000)
    parser.add_argument("--ingest-docs", type=int, default=4_000)
    parser.add_argument("--tokens-per-doc", type=int, default=40)
    parser.add_argument("--queries", type=int, default=24, help="distinct queries")
    parser.add_argument("--repeats", type=int, default=4, help="batch repeats")
    parser.add_argument(
        "--flush-threshold", type=int, default=256,
        help="memtable documents per segment seal (default: 256)",
    )
    parser.add_argument("--access-mode", default="fast", choices=["paper", "fast"])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke scale (400 base docs, 600 ingested, small batch)",
    )
    args = parser.parse_args()
    if args.quick:
        args.base_docs, args.ingest_docs = 400, 600
        args.queries, args.repeats, args.flush_threshold = 12, 2, 64

    row = run(
        args.base_docs,
        args.ingest_docs,
        args.tokens_per_doc,
        args.queries,
        args.repeats,
        args.flush_threshold,
        args.access_mode,
    )
    print(
        f"ingest benchmark: base {args.base_docs} docs, stream "
        f"{args.ingest_docs} docs ({args.tokens_per_doc} tokens each), "
        f"flush threshold {args.flush_threshold}, access mode {args.access_mode}"
    )
    print(
        f"sustained ingest      : {row['ingest_rate']:>10,.0f} docs/s "
        f"({row['segments_after_ingest']} segments afterwards)"
    )
    print(
        f"under concurrent ingest: {row['concurrent_rate']:>9,.0f} docs/s while "
        f"serving {row['total_queries']} queries "
        f"(p50={row['live_p50']:.2f} ms p95={row['live_p95']:.2f} ms)"
    )
    print(
        f"before compaction     : {row['segments_before_compact']} segments, "
        f"p50={row['pre_p50']:.2f} ms p95={row['pre_p95']:.2f} ms, "
        f"{row['pre_cursor_ops']:,.0f} cursor ops/query"
    )
    print(
        f"after compaction      : {row['segments_after_compact']} segments, "
        f"p50={row['post_p50']:.2f} ms p95={row['post_p95']:.2f} ms, "
        f"{row['post_cursor_ops']:,.0f} cursor ops/query "
        f"(compaction merged {row['compact_report']['segments_merged']} "
        f"segments in {row['compact_seconds'] * 1e3:.0f} ms)"
    )
    if row["segments_after_compact"] >= row["segments_before_compact"]:
        raise SystemExit("compaction did not reduce the segment count")
    if row["post_cursor_ops"] > row["pre_cursor_ops"]:
        raise SystemExit("compaction did not reduce per-query cursor work")


if __name__ == "__main__":
    main()
