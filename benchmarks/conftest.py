"""Fixtures for the pytest-benchmark suite.

Every benchmark evaluates queries against deterministic synthetic INEX-like
collections (see ``repro.corpus.synthetic``).  The sizes are chosen so the
whole suite finishes in a few minutes of pure Python while still showing the
complexity-driven separations of the paper's figures; ``EXPERIMENTS.md``
records how to scale the sweeps towards the paper's sizes.
"""

from __future__ import annotations

import pytest

from support import build_index


@pytest.fixture(scope="session")
def default_index():
    """The fixed dataset used by the query-side sweeps (Figures 5 and 6)."""
    return build_index()


@pytest.fixture(scope="session")
def indexes_by_node_count():
    """Datasets of increasing size for Figure 7."""
    return {count: build_index(num_nodes=count) for count in (100, 300, 600)}


@pytest.fixture(scope="session")
def indexes_by_pos_per_entry():
    """Datasets with fatter inverted-list entries for Figure 8."""
    return {value: build_index(pos_per_entry=value) for value in (2, 4, 8)}
