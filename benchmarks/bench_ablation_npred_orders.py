"""Ablation: NPRED permutation threads -- all total orders vs minimal orders.

The basic NPRED algorithm (Section 5.6.2) runs one evaluation thread per
total order of the query-token cursors (up to ``toks_Q!``); the paper notes
that "our implementation generates only the necessary partial orders".  This
ablation measures both strategies on negative-predicate queries with a
growing number of query tokens, where only two of the tokens participate in
the negative predicate -- exactly the case where the minimal strategy wins.

Run with ``pytest benchmarks/bench_ablation_npred_orders.py --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.engine.npred_engine import NPredEngine
from repro.languages import ast

from support import QUERY_TOKENS


def negative_query(num_tokens: int) -> ast.QueryNode:
    """``num_tokens`` bindings, one not_distance predicate over the first two."""
    variables = [f"p{i + 1}" for i in range(num_tokens)]
    conjuncts: list[ast.QueryNode] = [
        ast.VarHasToken(var, token)
        for var, token in zip(variables, QUERY_TOKENS)
    ]
    conjuncts.append(ast.PredQuery("not_distance", (variables[0], variables[1]), (5,)))
    body: ast.QueryNode = conjuncts[0]
    for conjunct in conjuncts[1:]:
        body = ast.AndQuery(body, conjunct)
    for var in reversed(variables):
        body = ast.SomeQuery(var, body)
    return body


@pytest.mark.parametrize("num_tokens", (2, 3, 4))
@pytest.mark.parametrize("orders", ("minimal", "all"))
def test_ablation_npred_orders(benchmark, default_index, num_tokens, orders):
    query = negative_query(num_tokens)
    engine = NPredEngine(default_index, orders=orders)
    benchmark.group = f"Ablation: NPRED orders | query tokens = {num_tokens}"
    matches = benchmark(engine.evaluate, query)
    benchmark.extra_info["matches"] = len(matches)
    benchmark.extra_info["orders"] = orders


def test_both_strategies_return_identical_answers(default_index):
    for num_tokens in (2, 3, 4):
        query = negative_query(num_tokens)
        minimal = NPredEngine(default_index, orders="minimal").evaluate(query)
        exhaustive = NPredEngine(default_index, orders="all").evaluate(query)
        assert minimal == exhaustive
