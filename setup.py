"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in fully offline environments where the PEP 517
build path (which needs the ``wheel`` package) is unavailable.
"""

from setuptools import setup

setup()
