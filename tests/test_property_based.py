"""Property-based tests (hypothesis) for the core invariants.

Four families of properties:

* tokenizer/corpus invariants (offsets dense and increasing, structure
  ordinals monotone);
* inverted-index invariants (the index is a lossless re-arrangement of the
  collection);
* algebra/relational invariants (set-operation algebraic laws, join vs
  intersection);
* **engine equivalence**: for randomly generated small collections and
  randomly generated queries from the PPRED/NPRED/BOOL fragments, every
  applicable engine returns exactly the node set computed by the reference
  calculus evaluator.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.corpus import Collection, ContextNode
from repro.engine.bool_engine import BoolEngine
from repro.engine.naive_engine import NaiveCompEngine
from repro.engine.npred_engine import NPredEngine
from repro.engine.ppred_engine import PPredEngine
from repro.index import InvertedIndex
from repro.languages import ast
from repro.languages.classify import LanguageClass, classify_query
from repro.model.calculus import CalculusEvaluator
from repro.model.relations import FullTextRelation
from repro.model.positions import Position

# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------
TOKENS = ["a", "b", "c", "d"]

token_strategy = st.sampled_from(TOKENS)

documents = st.lists(token_strategy, min_size=0, max_size=12)


@st.composite
def collections(draw, min_nodes: int = 1, max_nodes: int = 6) -> Collection:
    docs = draw(st.lists(documents, min_size=min_nodes, max_size=max_nodes))
    nodes = [
        ContextNode.from_tokens(
            idx, tokens, sentence_length=3, paragraph_length=5
        )
        for idx, tokens in enumerate(docs)
    ]
    return Collection.from_nodes(nodes)


@st.composite
def bool_queries(draw, depth: int = 2) -> ast.QueryNode:
    if depth == 0:
        return ast.TokenQuery(draw(token_strategy))
    choice = draw(st.integers(0, 4))
    if choice == 0:
        return ast.TokenQuery(draw(token_strategy))
    if choice == 1:
        return ast.AnyQuery()
    if choice == 2:
        return ast.NotQuery(draw(bool_queries(depth=depth - 1)))
    left = draw(bool_queries(depth=depth - 1))
    right = draw(bool_queries(depth=depth - 1))
    return ast.AndQuery(left, right) if choice == 3 else ast.OrQuery(left, right)


POSITIVE_PREDICATES = [("distance", (2,)), ("ordered", ()), ("samepara", ()),
                       ("samesentence", ()), ("samepos", ())]
NEGATIVE_PREDICATES = [("not_distance", (1,)), ("not_ordered", ()),
                       ("not_samepara", ()), ("diffpos", ())]


@st.composite
def predicate_queries(draw, kinds) -> ast.QueryNode:
    """SOME p1 SOME p2 (p1 HAS t1 AND p2 HAS t2 AND pred(p1, p2) [AND pred2])."""
    first = draw(token_strategy)
    second = draw(token_strategy)
    predicates = draw(st.lists(st.sampled_from(kinds), min_size=1, max_size=2))
    body: ast.QueryNode = ast.AndQuery(
        ast.VarHasToken("p1", first), ast.VarHasToken("p2", second)
    )
    for name, constants in predicates:
        body = ast.AndQuery(body, ast.PredQuery(name, ("p1", "p2"), constants))
    return ast.SomeQuery("p1", ast.SomeQuery("p2", body))


# --------------------------------------------------------------------------
# Corpus / index invariants
# --------------------------------------------------------------------------
@given(documents)
def test_from_tokens_offsets_are_dense_and_structure_monotone(tokens):
    node = ContextNode.from_tokens(0, tokens, sentence_length=3, paragraph_length=5)
    offsets = [pos.offset for pos in node.positions()]
    assert offsets == list(range(len(tokens)))
    sentences = [pos.sentence for pos in node.positions()]
    paragraphs = [pos.paragraph for pos in node.positions()]
    assert sentences == sorted(sentences)
    assert paragraphs == sorted(paragraphs)


@given(collections())
def test_index_is_a_lossless_rearrangement_of_the_collection(collection):
    index = InvertedIndex(collection)
    index.validate()
    # Sum of posting-list sizes equals the number of token occurrences.
    assert sum(pl.total_positions() for pl in index.posting_lists()) == (
        collection.total_token_count()
    )
    # Document frequencies agree with the collection.
    for token in collection.vocabulary():
        assert index.document_frequency(token) == collection.document_frequency(token)


@given(collections())
def test_statistics_complexity_parameters_bound_the_data(collection):
    stats = InvertedIndex(collection).statistics
    params = stats.complexity_parameters()
    assert params.cnodes == len(collection)
    assert params.pos_per_entry <= params.pos_per_cnode
    assert params.entries_per_token <= params.cnodes


# --------------------------------------------------------------------------
# Relational invariants
# --------------------------------------------------------------------------
rows_strategy = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 6).map(Position)),
    min_size=0,
    max_size=12,
)


@given(rows_strategy, rows_strategy)
def test_set_operation_laws(rows_a, rows_b):
    left = FullTextRelation.from_rows(1, rows_a)
    right = FullTextRelation.from_rows(1, rows_b)
    union = set(left.union(right).rows)
    intersection = set(left.intersection(right).rows)
    difference = set(left.difference(right).rows)
    assert union == set(left.rows) | set(right.rows)
    assert intersection == set(left.rows) & set(right.rows)
    assert difference == set(left.rows) - set(right.rows)
    # Union is the disjoint union of the difference pieces and the intersection.
    assert union == difference | intersection | (set(right.rows) - set(left.rows))


@given(rows_strategy, rows_strategy)
def test_join_projected_to_nodes_is_node_intersection(rows_a, rows_b):
    left = FullTextRelation.from_rows(1, rows_a)
    right = FullTextRelation.from_rows(1, rows_b)
    joined_nodes = left.join(right).node_ids()
    assert joined_nodes == sorted(set(left.node_ids()) & set(right.node_ids()))


# --------------------------------------------------------------------------
# Engine equivalence
# --------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(collections(), bool_queries())
def test_bool_engine_matches_the_oracle(collection, query):
    index = InvertedIndex(collection)
    oracle = CalculusEvaluator().evaluate_query(query.to_calculus_query(), collection)
    assert BoolEngine(index).evaluate(query) == oracle
    assert NaiveCompEngine(index).evaluate(query) == oracle


@settings(max_examples=40, deadline=None)
@given(collections(), predicate_queries(POSITIVE_PREDICATES))
def test_ppred_engine_matches_the_oracle(collection, query):
    assert classify_query(query) is LanguageClass.PPRED
    index = InvertedIndex(collection)
    oracle = CalculusEvaluator().evaluate_query(query.to_calculus_query(), collection)
    assert PPredEngine(index).evaluate(query) == oracle
    assert NPredEngine(index).evaluate(query) == oracle
    assert NaiveCompEngine(index).evaluate(query) == oracle


@settings(max_examples=40, deadline=None)
@given(collections(), predicate_queries(NEGATIVE_PREDICATES + POSITIVE_PREDICATES))
def test_npred_engine_matches_the_oracle(collection, query):
    index = InvertedIndex(collection)
    oracle = CalculusEvaluator().evaluate_query(query.to_calculus_query(), collection)
    assert NPredEngine(index).evaluate(query) == oracle
    assert NPredEngine(index, orders="all").evaluate(query) == oracle
    assert NaiveCompEngine(index).evaluate(query) == oracle
