"""End-to-end integration tests across module boundaries.

These tests exercise complete user workflows rather than single modules:
tokenize -> index -> persist -> reload -> search with every language and
engine, with and without scoring, and verify that every path returns the same
answers as the calculus oracle.
"""

from __future__ import annotations

import pytest

from repro import Collection, FullTextEngine
from repro.corpus.loaders import load_directory
from repro.corpus.synthetic import SyntheticSpec, generate_collection
from repro.index import InvertedIndex, load_index, save_index
from repro.languages.builders import ordered_near, phrase, term
from repro.languages.parser import LanguageLevel, QueryParser
from repro.model.calculus import CalculusEvaluator

_PARSER = QueryParser(LanguageLevel.COMP)

ARTICLES = {
    "intro.txt": """
        Full text search over XML documents combines structured search with
        keyword search. Usability of a query language measures how well users
        achieve efficient task completion.

        This article surveys full text search languages and their semantics.
    """,
    "engine.txt": """
        An inverted list stores for every token the documents and positions
        where it occurs. Query evaluation merges inverted lists.

        Efficient evaluation of proximity predicates requires position
        information inside the inverted list entries.
    """,
    "ranking.txt": """
        Ranking assigns a score to every matching document. TF IDF scoring and
        probabilistic scoring are the most common methods for keyword search.
    """,
}


@pytest.fixture(scope="module")
def article_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("articles")
    for name, text in ARTICLES.items():
        (directory / name).write_text(text, encoding="utf-8")
    return directory


def test_directory_to_search_workflow(article_dir, tmp_path_factory):
    # 1. ingest a directory of text files
    collection = load_directory(article_dir)
    assert len(collection) == 3

    # 2. build and persist the index, then reload it
    index = InvertedIndex(collection)
    path = tmp_path_factory.mktemp("persist") / "articles.json.gz"
    save_index(index, path)
    reloaded = load_index(path)

    # 3. search the reloaded index in all three languages
    engine = FullTextEngine(reloaded, scoring="tfidf")
    keyword = engine.search("'inverted' AND 'lists'")
    proximity = engine.search("dist('task', 'completion', 0)", language="dist")
    structural = engine.search(
        "SOME p1 SOME p2 (p1 HAS 'efficient' AND p2 HAS 'evaluation' "
        "AND samepara(p1, p2) AND ordered(p1, p2))"
    )
    assert keyword.node_ids and proximity.node_ids and structural.node_ids
    # every reported node really contains the query tokens
    for result in keyword:
        node = reloaded.collection.get(result.node_id)
        assert node.contains("inverted") and node.contains("lists")


def test_every_engine_agrees_after_a_disk_round_trip(article_dir, tmp_path_factory):
    collection = load_directory(article_dir)
    path = tmp_path_factory.mktemp("persist2") / "articles.json"
    save_index(InvertedIndex(collection), path)
    reloaded = load_index(path)
    engine = FullTextEngine(reloaded)

    queries = [
        "'keyword' AND 'search'",
        "dist('full', 'text', 0)",
        "SOME p1 SOME p2 (p1 HAS 'inverted' AND p2 HAS 'positions' "
        "AND not_distance(p1, p2, 3))",
        "EVERY p (NOT p HAS 'zebra')",
    ]
    oracle = CalculusEvaluator()
    for text in queries:
        parsed = _PARSER.parse_closed(text)
        expected = oracle.evaluate_query(parsed.to_calculus_query(), reloaded.collection)
        # Without a scoring model the facade preserves the engines' ascending
        # node-id order, so the comparison against the oracle is direct.
        assert engine.search(text).node_ids == expected, text


def test_builders_and_text_queries_agree(article_dir):
    collection = load_directory(article_dir)
    engine = FullTextEngine.from_collection(collection)

    built = engine.search(ordered_near(term("efficient"), phrase("task completion"), 10))
    textual = engine.search(
        "SOME w SOME t1 SOME t2 (w HAS 'efficient' AND t1 HAS 'task' AND "
        "t2 HAS 'completion' AND ordered(t1, t2) AND distance(t1, t2, 0) AND "
        "ordered(w, t1) AND distance(w, t1, 10))"
    )
    assert built.node_ids == textual.node_ids


def test_search_context_subsetting_restricts_answers(article_dir):
    collection = load_directory(article_dir)
    full_engine = FullTextEngine.from_collection(collection)
    all_matches = full_engine.search("'search'").node_ids
    assert len(all_matches) >= 2

    subset = collection.subset(all_matches[:1])
    sub_engine = FullTextEngine.from_collection(subset)
    assert sub_engine.search("'search'").node_ids == all_matches[:1]


def test_large_synthetic_collection_end_to_end():
    spec = SyntheticSpec(
        num_nodes=120,
        tokens_per_node=80,
        vocabulary_size=400,
        query_tokens=("alpha", "beta", "gamma"),
        query_token_document_frequency=0.5,
        query_token_positions_per_entry=3,
        seed=99,
    )
    collection = generate_collection(spec)
    engine = FullTextEngine.from_collection(collection, scoring="probabilistic")

    ppred = engine.search(
        "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'beta' AND distance(p1, p2, 30))"
    )
    npred = engine.search(
        "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'beta' AND not_distance(p1, p2, 30))"
    )
    both = engine.search("'alpha' AND 'beta'")
    assert set(ppred.node_ids) <= set(both.node_ids)
    assert set(npred.node_ids) <= set(both.node_ids)
    assert set(ppred.node_ids) | set(npred.node_ids) == set(both.node_ids)
    # scoring produced probabilities
    assert all(0.0 <= result.score <= 1.0 for result in both)


def test_consistency_between_forced_engines_on_synthetic():
    collection = generate_collection(
        SyntheticSpec(
            num_nodes=60,
            tokens_per_node=50,
            vocabulary_size=200,
            query_tokens=("alpha", "beta"),
            query_token_document_frequency=0.7,
            query_token_positions_per_entry=2,
            seed=5,
        )
    )
    engine = FullTextEngine.from_collection(collection)
    query = "dist('alpha', 'beta', 8)"
    auto = engine.search(query)
    assert auto.engine == "ppred"
    forced = {
        name: engine.search(query, engine=name).node_ids
        for name in ("ppred", "npred", "comp")
    }
    assert forced["ppred"] == forced["npred"] == forced["comp"] == sorted(auto.node_ids)
