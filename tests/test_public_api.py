"""Smoke tests of the package's public surface (imports, __all__, docstrings)."""

from __future__ import annotations

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.corpus",
    "repro.index",
    "repro.model",
    "repro.languages",
    "repro.engine",
    "repro.scoring",
    "repro.core",
    "repro.bench",
    "repro.cluster",
    "repro.segments",
    "repro.cli",
]


def test_version_is_exposed():
    assert repro.__version__


def test_top_level_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackages_import_and_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} is missing a module docstring"


@pytest.mark.parametrize("module_name", SUBPACKAGES[:-1])
def test_subpackage_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name}"


def test_readme_quickstart_snippet_runs():
    from repro import Collection, FullTextEngine

    collection = Collection.from_texts(
        [
            "usability testing of efficient software",
            "software measures task completion",
        ]
    )
    engine = FullTextEngine.from_collection(collection)
    result = engine.search("'software' AND 'usability'")
    assert result.node_ids == [0]


def test_public_classes_have_docstrings():
    from repro.core.engine import FullTextEngine
    from repro.engine.ppred_engine import PPredEngine
    from repro.model.calculus import CalculusEvaluator
    from repro.model.predicates import Predicate

    for obj in (FullTextEngine, PPredEngine, CalculusEvaluator, Predicate):
        assert obj.__doc__
        public_methods = [
            getattr(obj, name)
            for name in dir(obj)
            if not name.startswith("_") and callable(getattr(obj, name))
        ]
        for method in public_methods:
            assert method.__doc__, f"{obj.__name__}.{method.__name__} lacks a docstring"
