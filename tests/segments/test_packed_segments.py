"""Tests for packed (v4) live-index segment persistence.

The live subsystem now seals segments as packed binary files by default:
restore must mmap them zero-copy (:class:`PackedSegmentData`) instead of
rebuilding posting columns, queries over restored packed segments must
equal a fresh in-memory rebuild, tombstones must survive the round trip,
and ``segment_format="json"`` plus mixed-format directories must keep
working for pre-v4 deployments.
"""

from __future__ import annotations

import json

import pytest

from repro.corpus.collection import Collection
from repro.exceptions import StorageError
from repro.index.inverted_index import InvertedIndex
from repro.index.packed import is_packed_segment
from repro.segments import LiveIndex
from repro.segments.sealed import PackedSegmentData, SegmentData


def collect(cursor) -> list[int]:
    ids = []
    current = cursor.next_entry()
    while current is not None:
        ids.append(current)
        current = cursor.next_entry()
    return ids


@pytest.fixture
def texts() -> list[str]:
    return [
        "usability testing of software",
        "software task completion",
        "task analysis for usability",
        "efficient software testing",
    ]


def _restored_segment_data(live: LiveIndex):
    return [segment.data for segment in live._manager.segments]


# ----------------------------------------------------------- packed persist
def test_seal_writes_packed_files_and_manifest_v4(tmp_path, texts):
    directory = tmp_path / "idx"
    live = LiveIndex(Collection.from_texts(texts), directory=directory)
    live.add_text("doc one")
    live.flush()
    live.close()
    segments = sorted(directory.glob("segments/seg-*.seg"))
    assert segments and all(is_packed_segment(path) for path in segments)
    assert not list(directory.glob("segments/seg-*.json.gz"))
    manifest = json.loads((directory / "MANIFEST.json").read_text())
    assert manifest["version"] == 4


def test_restore_serves_packed_segments_zero_copy(tmp_path, texts):
    directory = tmp_path / "idx"
    live = LiveIndex(Collection.from_texts(texts), directory=directory)
    live.add_text("fresh software document")
    live.flush()
    live.close()

    reopened = LiveIndex.open(directory)
    restored = _restored_segment_data(reopened)
    assert restored and all(
        isinstance(data, PackedSegmentData) for data in restored
    )
    assert reopened.node_count() == len(texts) + 1
    assert collect(reopened.open_cursor("software")) == [0, 1, 3, 4]
    reopened.validate()
    reopened.close()


def test_restored_queries_equal_fresh_rebuild(tmp_path, texts):
    directory = tmp_path / "idx"
    live = LiveIndex(Collection.from_texts(texts), directory=directory)
    live.add_text("brand new software tokens")
    live.update_text(0, "rewritten usability document")
    live.flush()
    live.close()

    reopened = LiveIndex.open(directory)
    reference = InvertedIndex(
        Collection.from_nodes(
            sorted(reopened.collection, key=lambda node: node.node_id)
        )
    )
    assert reopened.tokens() == reference.tokens()
    for token in reference.tokens():
        assert reopened.document_frequency(token) == reference.document_frequency(
            token
        ), token
        assert collect(reopened.open_cursor(token)) == reference.posting_list(
            token
        ).node_ids(), token
    reopened.close()


def test_tombstones_survive_packed_restore(tmp_path, texts):
    directory = tmp_path / "idx"
    live = LiveIndex(Collection.from_texts(texts), directory=directory)
    live.flush()
    live.delete_node(1)
    live.close()

    reopened = LiveIndex.open(directory)
    assert reopened.node_ids() == [0, 2, 3]
    assert 1 not in [
        node.node_id for node in reopened.collection
    ]
    reopened.validate()
    reopened.close()


def test_wal_replay_on_top_of_packed_segments(tmp_path, texts):
    directory = tmp_path / "idx"
    live = LiveIndex(Collection.from_texts(texts), directory=directory)
    live.flush()
    live.add_text("unflushed tail document")  # stays in the WAL
    live.close()

    recovered = LiveIndex.open(directory)
    assert recovered.node_count() == len(texts) + 1
    assert collect(recovered.open_cursor("unflushed")) == [len(texts)]
    recovered.close()


def test_compaction_unlinks_packed_files(tmp_path, texts):
    directory = tmp_path / "idx"
    live = LiveIndex(
        Collection.from_texts(texts), directory=directory, flush_threshold=2
    )
    for i in range(6):
        live.add_text(f"filler document number {i}")
    live.flush()
    before = set(directory.glob("segments/seg-*.seg"))
    assert len(before) > 1
    live.compact()
    after = set(directory.glob("segments/seg-*.seg"))
    manifest = json.loads((directory / "MANIFEST.json").read_text())
    listed = {directory / "segments" / record["file"] for record in manifest["segments"]}
    assert after == listed  # no orphaned segment files
    live.close()


# ------------------------------------------------------------- json format
def test_json_segment_format_still_works(tmp_path, texts):
    directory = tmp_path / "idx"
    live = LiveIndex(
        Collection.from_texts(texts), directory=directory, segment_format="json"
    )
    live.add_text("doc one")
    live.flush()
    live.close()
    assert list(directory.glob("segments/seg-*.json.gz"))
    assert not list(directory.glob("segments/seg-*.seg"))
    manifest = json.loads((directory / "MANIFEST.json").read_text())
    assert manifest["version"] == 3

    reopened = LiveIndex.open(directory, segment_format="json")
    restored = _restored_segment_data(reopened)
    assert restored and all(
        type(data) is SegmentData for data in restored
    )
    assert reopened.node_count() == len(texts) + 1
    reopened.validate()
    reopened.close()


def test_mixed_format_directory_restores_and_compacts(tmp_path, texts):
    directory = tmp_path / "idx"
    live = LiveIndex(
        Collection.from_texts(texts), directory=directory, segment_format="json"
    )
    live.flush()
    live.close()

    # Reopen with the packed default: old json segments restore, new seals
    # are packed, and both coexist in the manifest.
    mixed = LiveIndex.open(directory)
    mixed.add_text("a packed era document")
    mixed.flush()
    json_files = list(directory.glob("segments/seg-*.json.gz"))
    seg_files = list(directory.glob("segments/seg-*.seg"))
    assert json_files and seg_files
    mixed.close()

    reopened = LiveIndex.open(directory)
    assert reopened.node_count() == len(texts) + 1
    datas = _restored_segment_data(reopened)
    assert any(isinstance(data, PackedSegmentData) for data in datas)
    assert any(type(data) is SegmentData for data in datas)

    # Full compaction rewrites everything packed and unlinks BOTH formats'
    # old files (the per-generation file map knows each real path).
    reopened.compact()
    manifest = json.loads((directory / "MANIFEST.json").read_text())
    on_disk = {path.name for path in directory.glob("segments/seg-*")}
    assert on_disk == {record["file"] for record in manifest["segments"]}
    reopened.close()


def test_unknown_segment_format_is_rejected(texts):
    with pytest.raises(StorageError, match="unknown segment_format"):
        LiveIndex(Collection.from_texts(texts), segment_format="parquet")


def test_manifest_error_names_path(tmp_path, texts):
    directory = tmp_path / "idx"
    live = LiveIndex(Collection.from_texts(texts), directory=directory)
    live.flush()
    live.close()
    manifest_path = directory / "MANIFEST.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["version"] = 42
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(StorageError) as excinfo:
        LiveIndex.open(directory)
    assert "42" in str(excinfo.value)
    assert str(manifest_path) in str(excinfo.value)
