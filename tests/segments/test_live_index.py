"""Tests for LiveIndex: the facade, persistence, and crash recovery."""

from __future__ import annotations

import json

import pytest

from repro.corpus.collection import Collection
from repro.exceptions import IndexError_, StorageError
from repro.index.inverted_index import InvertedIndex
from repro.segments import LiveIndex, WriteAheadLog


def collect(cursor) -> list[int]:
    ids = []
    current = cursor.next_entry()
    while current is not None:
        ids.append(current)
        current = cursor.next_entry()
    return ids


@pytest.fixture
def texts() -> list[str]:
    return [
        "usability testing of software",
        "software task completion",
        "task analysis for usability",
        "efficient software testing",
    ]


# ------------------------------------------------------------------- facade
def test_in_memory_lifecycle(texts):
    live = LiveIndex(Collection.from_texts(texts), flush_threshold=2)
    new_id = live.add_text("fresh software document")
    assert new_id == 4
    live.update_text(0, "rewritten document")
    assert live.delete_node(1)
    assert not live.delete_node(1)
    assert live.node_ids() == [0, 2, 3, 4]
    assert live.node_count() == 4
    assert collect(live.open_cursor("software")) == [3, 4]
    live.validate()


def test_update_unknown_node_raises(texts):
    live = LiveIndex(Collection.from_texts(texts))
    with pytest.raises(IndexError_):
        live.update_text(99, "whatever")


def test_document_frequency_and_tokens_are_exact(texts):
    live = LiveIndex(Collection.from_texts(texts), flush_threshold=2)
    live.delete_node(0)
    live.update_text(1, "nothing relevant here")
    reference = InvertedIndex(
        Collection.from_nodes(sorted(live.collection, key=lambda n: n.node_id))
    )
    for token in reference.tokens():
        assert live.document_frequency(token) == reference.document_frequency(token)
    assert live.tokens() == reference.tokens()
    assert "software" in live


def test_statistics_match_fresh_rebuild(texts):
    live = LiveIndex(Collection.from_texts(texts), flush_threshold=2)
    live.add_text("brand new software tokens")
    live.delete_node(2)
    live.update_text(0, "task software task")
    reference = InvertedIndex(
        Collection.from_nodes(sorted(live.collection, key=lambda n: n.node_id))
    )
    stats, ref_stats = live.statistics, reference.statistics
    assert stats.node_count == ref_stats.node_count
    assert stats.vocabulary() == ref_stats.vocabulary()
    for token in ref_stats.vocabulary():
        assert stats.document_frequency(token) == ref_stats.document_frequency(token)
        assert stats.idf(token) == ref_stats.idf(token)
    for node_id in reference.node_ids():
        assert stats.node_l2_norm(node_id) == ref_stats.node_l2_norm(node_id)
    params = stats.complexity_parameters()
    assert params.cnodes == ref_stats.complexity_parameters().cnodes


def test_statistics_freeze_survives_concurrent_delete(texts):
    """A scoring model bound to one statistics generation must keep working

    (norms, occurrence counts) for nodes deleted after that generation was
    cut -- in-flight queries may still legitimately score them."""
    live = LiveIndex(Collection.from_texts(texts), flush_threshold=2)
    stats = live.statistics
    norm_before = stats.node_l2_norm(0)
    live.delete_node(0)
    assert stats.node_l2_norm(0) == norm_before  # frozen corpus, no KeyError
    assert live.statistics.node_count == stats.node_count - 1


def test_statistics_cache_refreshes_on_mutation(texts):
    live = LiveIndex(Collection.from_texts(texts))
    first = live.statistics
    assert live.statistics is first  # cached while nothing changes
    live.add_text("another doc")
    assert live.statistics is not first


def test_memory_footprint_shape(texts):
    live = LiveIndex(Collection.from_texts(texts), flush_threshold=2)
    live.add_text("extra doc in the memtable")
    footprint = live.memory_footprint()
    assert footprint["total_bytes"] > 0
    assert set(footprint) == {
        "node_ids_bytes",
        "entry_bounds_bytes",
        "offsets_bytes",
        "structure_bytes",
        "total_bytes",
    }


# -------------------------------------------------------------- persistence
def test_persistence_round_trip(tmp_path, texts):
    live = LiveIndex(
        Collection.from_texts(texts), directory=tmp_path / "idx", flush_threshold=100
    )
    live.add_text("added after build")
    live.update_text(0, "rewritten after build")
    live.delete_node(1)
    live.close()

    reopened = LiveIndex.open(tmp_path / "idx", flush_threshold=100)
    assert reopened.node_ids() == [0, 2, 3, 4]
    assert reopened.collection.get(0).tokens == ["rewritten", "after", "build"]
    assert collect(reopened.open_cursor("build")) == [0, 4]
    reopened.validate()
    reopened.close()


def test_flush_truncates_wal_and_reopen_uses_manifest(tmp_path, texts):
    directory = tmp_path / "idx"
    live = LiveIndex(Collection.from_texts(texts), directory=directory)
    live.add_text("doc one")
    live.add_text("doc two")
    live.flush()
    live.close()
    assert WriteAheadLog.replay(directory / "wal.jsonl") == []
    manifest = json.loads((directory / "MANIFEST.json").read_text())
    assert manifest["format"] == "repro-manifest"
    assert len(manifest["segments"]) == 2
    reopened = LiveIndex.open(directory)
    assert reopened.node_count() == len(texts) + 2
    reopened.close()


def test_wal_crash_recovery_truncated_mid_record(tmp_path, texts):
    """Acceptance: replay after a torn write recovers the durable batch

    without losing documents or duplicating node ids."""
    directory = tmp_path / "idx"
    live = LiveIndex(
        Collection.from_texts(texts), directory=directory, flush_threshold=100
    )
    id_a = live.add_text("first durable document")
    id_b = live.add_text("second durable document")
    live.delete_node(0)
    # Simulate a crash: no close(), and the final record is torn mid-write.
    wal_path = directory / "wal.jsonl"
    payload = wal_path.read_bytes()
    assert payload.count(b"\n") == 3
    wal_path.write_bytes(payload[:-10])

    recovered = LiveIndex.open(directory, flush_threshold=100)
    # The torn record was the delete: both adds survive, node 0 is back.
    assert recovered.node_ids() == [0, 1, 2, 3, id_a, id_b]
    assert sorted(set(recovered.node_ids())) == recovered.node_ids()  # no dupes
    recovered.validate()
    recovered.close()


def test_crash_between_manifest_and_wal_reset_is_idempotent(tmp_path, texts):
    """A WAL already covered by the manifest must not re-apply on open."""
    directory = tmp_path / "idx"
    live = LiveIndex(
        Collection.from_texts(texts), directory=directory, flush_threshold=100
    )
    live.add_text("doc after build")
    live.delete_node(0)
    live.flush()  # manifest now covers everything; WAL was truncated
    # Simulate the crash window by rewriting the pre-flush WAL records.
    with WriteAheadLog(directory / "wal.jsonl") as wal:
        wal.append({"op": "add", "seq": 1, "node": {"id": 4, "metadata": {},
                    "occurrences": [["doc", 0, 0, 0]]}})
        wal.append({"op": "delete", "seq": 2, "id": 0})
    recovered = LiveIndex.open(directory, flush_threshold=100)
    # Records with seq <= applied_seq are skipped: no duplicate node 4.
    assert recovered.node_ids() == [1, 2, 3, 4]
    recovered.validate()
    recovered.close()


def test_compaction_rewrites_manifest_and_drops_old_files(tmp_path, texts):
    directory = tmp_path / "idx"
    live = LiveIndex(
        Collection.from_texts(texts), directory=directory, flush_threshold=2
    )
    for i in range(6):
        live.add_text(f"streamed document {i}")
    live.delete_node(0)
    segment_files_before = sorted((directory / "segments").iterdir())
    assert len(segment_files_before) >= 3
    live.compact()
    segment_files_after = sorted((directory / "segments").iterdir())
    assert len(segment_files_after) < len(segment_files_before)
    live.close()
    reopened = LiveIndex.open(directory)
    assert reopened.node_ids() == [1, 2, 3] + list(
        range(len(texts), len(texts) + 6)
    )
    reopened.validate()
    reopened.close()


def test_open_with_collection_on_existing_directory_raises(tmp_path, texts):
    directory = tmp_path / "idx"
    LiveIndex(Collection.from_texts(texts), directory=directory).close()
    with pytest.raises(StorageError, match="already holds a live index"):
        LiveIndex(Collection.from_texts(texts), directory=directory)


def test_wal_stats_exposed(tmp_path, texts):
    live = LiveIndex(Collection.from_texts(texts))
    assert live.wal_stats() == {"appended": 0, "synced_batches": 0}
    persisted = LiveIndex(
        Collection.from_texts(texts), directory=tmp_path / "idx", sync_every=1
    )
    persisted.add_text("doc")
    assert persisted.wal_stats()["appended"] == 1
    assert persisted.wal_stats()["synced_batches"] == 1
    persisted.close()
