"""Tests for the write-ahead log: batching, replay, crash recovery."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import StorageError
from repro.segments import WriteAheadLog


def test_append_and_replay_round_trip(tmp_path):
    path = tmp_path / "wal.jsonl"
    with WriteAheadLog(path, sync_every=2) as wal:
        wal.append({"op": "add", "seq": 1})
        wal.append({"op": "delete", "seq": 2, "id": 7})
        wal.append({"op": "add", "seq": 3})
    records = WriteAheadLog.replay(path)
    assert [r["seq"] for r in records] == [1, 2, 3]
    assert records[1] == {"op": "delete", "seq": 2, "id": 7}


def test_fsync_batching_counters(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.jsonl", sync_every=3)
    for seq in range(1, 8):
        wal.append({"seq": seq})
    # 7 appends at sync_every=3 -> 2 full batches; the tail is pending.
    assert wal.appended == 7
    assert wal.synced_batches == 2
    wal.close()  # close flushes the pending batch
    assert wal.synced_batches == 3


def test_sync_with_nothing_pending_counts_no_batch(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.jsonl", sync_every=10)
    wal.sync()
    assert wal.synced_batches == 0
    wal.close()


def test_replay_missing_file_is_empty(tmp_path):
    assert WriteAheadLog.replay(tmp_path / "absent.jsonl") == []


def test_replay_discards_torn_final_record(tmp_path):
    path = tmp_path / "wal.jsonl"
    with WriteAheadLog(path) as wal:
        for seq in range(1, 5):
            wal.append({"seq": seq, "op": "add", "payload": "x" * 20})
    data = path.read_bytes()
    path.write_bytes(data[:-9])  # crash mid-record: tear the last line
    records = WriteAheadLog.replay(path)
    assert [r["seq"] for r in records] == [1, 2, 3]


def test_replay_rejects_corruption_before_the_tail(tmp_path):
    path = tmp_path / "wal.jsonl"
    lines = [json.dumps({"seq": 1}), "garbage{{{", json.dumps({"seq": 3})]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    with pytest.raises(StorageError, match="corrupt"):
        WriteAheadLog.replay(path)


def test_replay_rejects_non_object_records(tmp_path):
    path = tmp_path / "wal.jsonl"
    path.write_text("[1, 2, 3]\n", encoding="utf-8")
    with pytest.raises(StorageError, match="not an object"):
        WriteAheadLog.replay(path)


def test_replay_after_skips_checkpointed_records(tmp_path):
    path = tmp_path / "wal.jsonl"
    with WriteAheadLog(path) as wal:
        for seq in range(1, 6):
            wal.append({"seq": seq})
    assert [r["seq"] for r in WriteAheadLog.replay_after(path, 3)] == [4, 5]
    assert [r["seq"] for r in WriteAheadLog.replay_after(path, 0)] == [1, 2, 3, 4, 5]
    assert list(WriteAheadLog.replay_after(path, 5)) == []


def test_reset_truncates(tmp_path):
    path = tmp_path / "wal.jsonl"
    wal = WriteAheadLog(path)
    wal.append({"seq": 1})
    wal.reset()
    wal.append({"seq": 2})
    wal.close()
    assert [r["seq"] for r in WriteAheadLog.replay(path)] == [2]


def test_append_after_reopen_appends(tmp_path):
    path = tmp_path / "wal.jsonl"
    with WriteAheadLog(path) as wal:
        wal.append({"seq": 1})
    with WriteAheadLog(path) as wal:
        wal.append({"seq": 2})
    assert [r["seq"] for r in WriteAheadLog.replay(path)] == [1, 2]


def test_rejects_bad_sync_every(tmp_path):
    with pytest.raises(StorageError):
        WriteAheadLog(tmp_path / "wal.jsonl", sync_every=0)
