"""The live-index contract: any op interleaving == a fresh rebuild.

Acceptance test of the live-indexing subsystem: after *any* interleaving of
add / update / delete / flush / compact, a live index returns results
identical to a single-shot index freshly built from the surviving documents
-- node ids exactly, scores to 1e-9 -- for BOOL / PPRED / NPRED queries,
both cursor access modes, both scorers, at shard counts {1, 4}.

Two layers, mirroring the cluster equivalence suite:

* deterministic sweeps with a fixed, deliberately nasty op script (updates
  of sealed and memtable-resident nodes, deletes before and after flushes,
  compaction mid-stream);
* a hypothesis property over random op sequences.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.workload import workload_queries
from repro.core.engine import FullTextEngine
from repro.corpus import Collection

#: Tokens every document draws from; "alpha"/"beta"/"gamma" are the planted
#: query tokens of the workload generator.
TOKENS = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta")

BASE_TEXTS = [
    "alpha beta gamma delta",
    "beta gamma delta epsilon",
    "gamma delta epsilon zeta",
    "alpha epsilon zeta beta",
    "zeta alpha alpha gamma",
    "delta beta epsilon epsilon",
]

#: Surface queries swept with engine="auto" (BOOL, BOOL+NOT, DIST, COMP).
SURFACE_QUERIES = [
    ("'alpha' AND 'beta'", "auto"),
    ("'alpha' OR 'gamma'", "auto"),
    ("'beta' AND NOT 'zeta'", "auto"),
    ("dist('alpha', 'beta', 2)", "dist"),
    (
        "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'gamma' AND ordered(p1, p2))",
        "comp",
    ),
]

#: (workload series, forced engine) covering the complexity hierarchy.
ENGINE_SERIES = [
    ("BOOL", "bool"),
    ("POSITIVE", "ppred"),
    ("POSITIVE", "npred"),
    ("NEGATIVE", "npred"),
]

#: The deterministic op script: every mutation class against every segment
#: location (memtable-resident, sealed, already-updated), with maintenance
#: interleaved.
SCRIPT = [
    ("add", "zeta epsilon alpha"),
    ("update", 1, "beta beta gamma"),
    ("delete", 3),
    ("flush",),
    ("update", 0, "gamma zeta"),          # update of a sealed node
    ("add", "alpha delta delta"),
    ("delete", 2),                         # delete of a sealed node
    ("update", 0, "alpha beta gamma"),    # re-update of an updated node
    ("compact",),
    ("add", "beta zeta"),
    ("delete", 6),
    ("flush",),
    ("add", "gamma gamma alpha"),
]


def apply_ops(engine: FullTextEngine, ops) -> None:
    for op in ops:
        kind = op[0]
        if kind == "add":
            engine.add_document(op[1])
        elif kind == "update":
            ids = engine.collection.node_ids()
            if ids:
                engine.update_document(ids[op[1] % len(ids)], op[2])
        elif kind == "delete":
            ids = engine.collection.node_ids()
            if ids:
                engine.delete_document(ids[op[1] % len(ids)])
        elif kind == "flush":
            engine.flush()
        elif kind == "compact":
            engine.compact()
        else:  # pragma: no cover - guards against typos in scripts
            raise AssertionError(f"unknown op {op!r}")


def rebuilt_reference(live: FullTextEngine, shards, scoring, access_mode):
    survivors = sorted(live.collection, key=lambda node: node.node_id)
    return FullTextEngine.from_collection(
        Collection.from_nodes(survivors, "rebuilt"),
        scoring=scoring,
        access_mode=access_mode,
        shards=shards,
    )


def assert_equivalent(live: FullTextEngine, reference: FullTextEngine, query,
                      language="auto", engine="auto"):
    expected = reference.search(query, language=language, engine=engine)
    got = live.search(query, language=language, engine=engine)
    assert got.node_ids == expected.node_ids, query
    for theirs, ours in zip(expected.results, got.results):
        assert ours.node_id == theirs.node_id
        assert ours.score == pytest.approx(theirs.score, abs=1e-9)


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("access_mode", ["paper", "fast"])
@pytest.mark.parametrize("scoring", [None, "tfidf", "probabilistic"])
def test_script_equivalence(shards, access_mode, scoring):
    live = FullTextEngine.from_collection(
        Collection.from_texts(BASE_TEXTS),
        scoring=scoring,
        access_mode=access_mode,
        shards=shards,
        live=True,
        flush_threshold=3,
    )
    apply_ops(live, SCRIPT)
    reference = rebuilt_reference(live, shards, scoring, access_mode)
    try:
        for query, language in SURFACE_QUERIES:
            assert_equivalent(live, reference, query, language)
        workload = workload_queries(["alpha", "beta", "gamma"], 3, 2)
        for series, engine in ENGINE_SERIES:
            assert_equivalent(live, reference, workload[series], engine=engine)
    finally:
        live.close()
        reference.close()


@pytest.mark.parametrize("shards", [1, 4])
def test_script_equivalence_is_durable(tmp_path, shards):
    """The same contract holds after a close + reopen from disk."""
    directory = tmp_path / "cluster"
    live = FullTextEngine.from_collection(
        Collection.from_texts(BASE_TEXTS),
        scoring="tfidf",
        shards=shards,
        live=True,
        live_dir=directory,
        flush_threshold=3,
    )
    apply_ops(live, SCRIPT)
    survivors = sorted(live.collection, key=lambda node: node.node_id)
    live.close()

    if shards == 1:
        from repro.segments import LiveIndex

        index = LiveIndex.open(directory, flush_threshold=3)
    else:
        from repro.cluster import LiveShardedIndex

        index = LiveShardedIndex.open(directory, shards, flush_threshold=3)
    reopened = FullTextEngine(index, scoring="tfidf")
    reference = FullTextEngine.from_collection(
        Collection.from_nodes(survivors, "rebuilt"), scoring="tfidf", shards=shards
    )
    try:
        for query, language in SURFACE_QUERIES:
            assert_equivalent(reopened, reference, query, language)
    finally:
        reopened.close()
        reference.close()


def texts_strategy():
    return st.lists(
        st.sampled_from(TOKENS), min_size=1, max_size=6
    ).map(" ".join)


def ops_strategy():
    add = st.tuples(st.just("add"), texts_strategy())
    update = st.tuples(st.just("update"), st.integers(0, 30), texts_strategy())
    delete = st.tuples(st.just("delete"), st.integers(0, 30))
    flush = st.tuples(st.just("flush"))
    compact = st.tuples(st.just("compact"))
    return st.lists(
        st.one_of(add, update, delete, flush, compact), min_size=1, max_size=25
    )


@settings(max_examples=25, deadline=None)
@given(ops=ops_strategy(), shards=st.sampled_from([1, 4]),
       access_mode=st.sampled_from(["paper", "fast"]))
def test_random_op_sequences_match_fresh_rebuild(ops, shards, access_mode):
    live = FullTextEngine.from_collection(
        Collection.from_texts(BASE_TEXTS),
        scoring="tfidf",
        access_mode=access_mode,
        shards=shards,
        live=True,
        flush_threshold=2,
    )
    apply_ops(live, ops)
    reference = rebuilt_reference(live, shards, "tfidf", access_mode)
    try:
        for query, language in SURFACE_QUERIES:
            assert_equivalent(live, reference, query, language)
    finally:
        live.close()
        reference.close()
