"""Tests for the memtable and its frozen columnar views."""

from __future__ import annotations

import pytest

from repro.corpus.document import ContextNode
from repro.exceptions import IndexError_
from repro.segments import MemTable


def node(node_id: int, text: str) -> ContextNode:
    return ContextNode.from_text(node_id, text)


def test_add_update_delete_lifecycle():
    table = MemTable()
    table.add(node(0, "alpha beta"))
    table.add(node(5, "beta gamma"))
    assert len(table) == 2
    assert 5 in table
    assert table.position_count == 4
    table.update(node(0, "gamma"))
    assert table.position_count == 3
    removed = table.delete(5)
    assert removed.node_id == 5
    assert len(table) == 1 and 5 not in table


def test_add_duplicate_and_update_missing_raise():
    table = MemTable()
    table.add(node(1, "alpha"))
    with pytest.raises(IndexError_):
        table.add(node(1, "beta"))
    with pytest.raises(IndexError_):
        table.update(node(9, "beta"))
    with pytest.raises(IndexError_):
        table.delete(9)


def test_documents_iterate_in_id_order():
    table = MemTable()
    table.add(node(9, "c"))
    table.add(node(2, "a"))
    table.add(node(5, "b"))
    assert [n.node_id for n in table.documents()] == [2, 5, 9]


def test_frozen_view_is_cached_and_replaced_on_mutation():
    table = MemTable()
    table.add(node(0, "alpha beta"))
    view1 = table.frozen_view()
    assert table.frozen_view() is view1  # cached between mutations
    table.add(node(1, "beta"))
    view2 = table.frozen_view()
    assert view2 is not view1
    # Snapshot isolation: the old view still shows the old state.
    assert view1.node_ids() == [0]
    assert view2.node_ids() == [0, 1]
    assert view1.lists["beta"].node_ids() == [0]
    assert view2.lists["beta"].node_ids() == [0, 1]


def test_frozen_view_of_empty_table_is_none():
    table = MemTable()
    assert table.frozen_view() is None
    table.add(node(0, "x"))
    table.delete(0)
    assert table.frozen_view() is None


def test_frozen_view_builds_any_list():
    table = MemTable()
    table.add(node(3, "alpha beta alpha"))
    view = table.frozen_view()
    assert view.any_list.node_ids() == [3]
    assert view.any_list.total_positions() == 3
    assert view.position_count == 3


def test_clear_empties_everything():
    table = MemTable()
    table.add(node(0, "alpha"))
    table.clear()
    assert len(table) == 0
    assert table.position_count == 0
    assert table.frozen_view() is None
