"""Tests for the segment manager: sealing, tombstones, snapshots, compaction."""

from __future__ import annotations

import pytest

from repro.corpus.collection import Collection
from repro.corpus.document import ContextNode
from repro.exceptions import IndexError_
from repro.segments import SegmentManager, TombstoneSet


def node(node_id: int, text: str) -> ContextNode:
    return ContextNode.from_text(node_id, text)


def collect(cursor) -> list[int]:
    ids = []
    current = cursor.next_entry()
    while current is not None:
        ids.append(current)
        current = cursor.next_entry()
    return ids


# ---------------------------------------------------------------- tombstones
def test_tombstone_seq_visibility():
    tombs = TombstoneSet()
    tombs.mark(4, 10)
    assert tombs.is_dead(4, 10)
    assert tombs.is_dead(4, 11)
    assert not tombs.is_dead(4, 9)  # snapshot taken before the delete
    assert not tombs.is_dead(5, 99)
    assert tombs.dead_ids(9) == set()
    assert tombs.dead_ids(10) == {4}


def test_tombstone_filter_at_none_when_empty():
    tombs = TombstoneSet()
    assert tombs.filter_at(5) is None
    tombs.mark(1, 3)
    dead = tombs.filter_at(5)
    assert dead(1) and not dead(2)
    assert tombs.filter_at(2)(1) is False


def test_tombstone_remark_keeps_earliest_seq():
    tombs = TombstoneSet()
    tombs.mark(1, 5)
    tombs.mark(1, 9)
    assert tombs.seq_of(1) == 5


# ------------------------------------------------------------------- sealing
def test_bootstrap_builds_one_segment():
    collection = Collection.from_texts(["a b", "b c", "c d"])
    manager = SegmentManager(collection)
    snapshot = manager.snapshot()
    assert len(snapshot.segments) == 1
    assert snapshot.memview is None
    assert snapshot.node_ids() == [0, 1, 2]


def test_flush_threshold_seals_automatically():
    manager = SegmentManager(flush_threshold=2)
    manager.add(node(0, "a"))
    assert len(manager.segments) == 0
    manager.add(node(1, "b"))
    assert len(manager.segments) == 1  # sealed at the threshold
    assert manager.memtable.doc_count == 0
    manager.add(node(2, "c"))
    assert manager.memtable.doc_count == 1


def test_add_rejects_live_duplicate_but_allows_reuse_after_delete():
    manager = SegmentManager(flush_threshold=100)
    manager.add(node(0, "a"))
    with pytest.raises(IndexError_):
        manager.add(node(0, "b"))
    assert manager.delete(0)
    manager.add(node(0, "b"))  # the id is free again
    assert manager.collection.get(0).tokens == ["b"]


def test_next_node_id_is_monotonic_across_deletes():
    manager = SegmentManager(flush_threshold=100)
    manager.add(node(0, "a"))
    manager.add(node(1, "b"))
    manager.delete(1)
    assert manager.next_node_id() == 2  # never reassigns the highest id


# ------------------------------------------------------- updates and deletes
def test_update_of_sealed_node_tombstones_and_reinserts():
    manager = SegmentManager(flush_threshold=100)
    manager.add(node(0, "alpha beta"))
    manager.add(node(1, "beta gamma"))
    manager.flush()
    manager.update(node(0, "gamma delta"))
    snapshot = manager.snapshot()
    assert collect(snapshot.open_cursor("beta")) == [1]
    assert collect(snapshot.open_cursor("gamma")) == [0, 1]
    assert snapshot.node_ids() == [0, 1]
    assert manager.collection.get(0).tokens == ["gamma", "delta"]


def test_delete_of_memtable_node_is_physical():
    manager = SegmentManager(flush_threshold=100)
    manager.add(node(0, "alpha"))
    assert manager.delete(0)
    assert not manager.delete(0)
    snapshot = manager.snapshot()
    assert snapshot.node_ids() == []
    assert snapshot.memview is None


def test_delete_of_sealed_node_uses_tombstone():
    manager = SegmentManager(flush_threshold=100)
    manager.add(node(0, "alpha"))
    manager.add(node(1, "alpha beta"))
    manager.flush()
    assert manager.delete(0)
    snapshot = manager.snapshot()
    assert collect(snapshot.open_cursor("alpha")) == [1]
    assert snapshot.node_ids() == [1]
    # Physically the entry is still there until compaction.
    assert manager.segments[0].doc_count == 2
    assert manager.segments[0].live_count() == 1


# ------------------------------------------------------------------ snapshots
def test_snapshot_isolation_against_delete_and_update():
    manager = SegmentManager(flush_threshold=100)
    manager.add(node(0, "alpha"))
    manager.add(node(1, "alpha beta"))
    manager.flush()
    before = manager.snapshot()
    manager.delete(0)
    manager.update(node(1, "gamma"))
    # The old snapshot still sees the original state...
    assert collect(before.open_cursor("alpha")) == [0, 1]
    assert before.node_ids() == [0, 1]
    # ...and a fresh one sees the new state.
    after = manager.snapshot()
    assert collect(after.open_cursor("alpha")) == []
    assert collect(after.open_cursor("gamma")) == [1]
    assert after.node_ids() == [1]


def test_snapshot_isolation_against_memtable_writes():
    manager = SegmentManager(flush_threshold=100)
    manager.add(node(0, "alpha"))
    before = manager.snapshot()
    manager.add(node(1, "alpha"))
    assert collect(before.open_cursor("alpha")) == [0]
    assert collect(manager.snapshot().open_cursor("alpha")) == [0, 1]


def test_snapshot_any_cursor_covers_survivors():
    manager = SegmentManager(flush_threshold=2)
    manager.add(node(0, "a b"))
    manager.add(node(1, "c"))
    manager.add(node(2, "d"))
    manager.delete(1)
    snapshot = manager.snapshot()
    assert collect(snapshot.open_any_cursor()) == [0, 2]


def test_seq_is_stable_across_flush_and_compact():
    manager = SegmentManager(flush_threshold=100)
    manager.add(node(0, "a"))
    manager.add(node(1, "b"))
    seq = manager.seq
    manager.flush()
    manager.compact()
    assert manager.seq == seq  # maintenance cannot change results


# ------------------------------------------------------------------ compaction
def test_full_compaction_purges_tombstones():
    manager = SegmentManager(flush_threshold=2)
    for i in range(6):
        manager.add(node(i, f"tok{i} shared"))
    manager.delete(1)
    manager.update(node(2, "replaced shared"))
    assert len(manager.segments) >= 3
    report = manager.compact()
    assert report["merges"] == 1
    segments = manager.segments
    assert len(segments) == 1
    assert len(segments[0].tombstones) == 0
    assert segments[0].doc_count == segments[0].live_count()
    snapshot = manager.snapshot()
    assert snapshot.node_ids() == [0, 2, 3, 4, 5]
    assert collect(snapshot.open_cursor("shared")) == [0, 2, 3, 4, 5]
    assert collect(snapshot.open_cursor("tok2")) == []
    assert collect(snapshot.open_cursor("replaced")) == [2]


def test_tiered_compaction_reduces_segment_count():
    manager = SegmentManager(flush_threshold=2, compaction_fanout=3)
    for i in range(18):
        manager.add(node(i, f"tok{i} shared"))
    assert len(manager.segments) == 9
    report = manager.maybe_compact()
    assert report["merges"] >= 1
    assert len(manager.segments) < 9
    snapshot = manager.snapshot()
    assert snapshot.node_ids() == list(range(18))


def test_compact_on_single_clean_segment_is_a_noop():
    collection = Collection.from_texts(["a", "b"])
    manager = SegmentManager(collection)
    assert manager.compact() == {"merges": 0, "segments_merged": 0}
    assert len(manager.segments) == 1


def test_old_snapshots_survive_compaction():
    manager = SegmentManager(flush_threshold=2)
    for i in range(4):
        manager.add(node(i, "shared"))
    manager.delete(0)
    before = manager.snapshot()
    manager.compact()
    # The snapshot pinned the pre-compaction segments.
    assert collect(before.open_cursor("shared")) == [1, 2, 3]
    assert collect(manager.snapshot().open_cursor("shared")) == [1, 2, 3]


def test_background_compaction_thread():
    manager = SegmentManager(flush_threshold=2, compaction_fanout=2)
    manager.start_auto_compaction(interval=0.005)
    try:
        for i in range(40):
            manager.add(node(i, f"tok{i % 5} shared"))
        deadline = 100
        import time

        while len(manager.segments) > 4 and deadline:
            time.sleep(0.01)
            deadline -= 1
        assert len(manager.segments) <= 4
    finally:
        manager.stop_auto_compaction()
    snapshot = manager.snapshot()
    assert snapshot.node_ids() == list(range(40))
    assert collect(snapshot.open_cursor("shared")) == list(range(40))


def test_snapshot_collection_is_pinned_against_concurrent_delete():
    """Snapshot isolation covers content, not just matching: a node the

    snapshot still matches must stay readable (scoring, COMP scans) even
    after a writer deletes it from the live store mid-query."""
    manager = SegmentManager(flush_threshold=100)
    manager.add(node(0, "alpha beta"))
    manager.add(node(1, "beta gamma"))
    manager.flush()
    snapshot = manager.snapshot()
    manager.delete(0)
    manager.update(node(1, "rewritten"))
    assert snapshot.collection.get(0).tokens == ["alpha", "beta"]
    assert snapshot.collection.get(1).tokens == ["beta", "gamma"]  # old revision
    assert [n.node_id for n in snapshot.collection] == [0, 1]
    # And a fresh snapshot pins the new state.
    assert manager.snapshot().collection.node_ids() == [1]


def test_segment_stats_rows():
    manager = SegmentManager(flush_threshold=2)
    for i in range(3):
        manager.add(node(i, f"tok{i}"))
    manager.delete(0)
    rows = manager.segment_stats()
    assert len(rows) == 2  # one sealed segment + the memtable
    sealed, memtable = rows
    assert sealed["docs"] == 2 and sealed["live_docs"] == 1
    assert sealed["tombstones"] == 1
    assert memtable["generation"] == -1 and memtable["docs"] == 1
