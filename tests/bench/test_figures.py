"""Tests for the figure sweeps (run at tiny smoke scale)."""

from __future__ import annotations

import pytest

from repro.bench.figures import FigureScale, figure5, figure6, figure7, figure8, run_all
from repro.bench.harness import SERIES


@pytest.fixture(scope="module")
def scale() -> FigureScale:
    return FigureScale.smoke()


def test_figure5_sweeps_token_counts(scale):
    table = figure5(scale)
    assert [point.x_value for point in table.points] == list(scale.token_counts)
    assert "BOOL" in table.series_names()


def test_figure6_sweeps_predicate_counts(scale):
    table = figure6(scale)
    assert [point.x_value for point in table.points] == list(scale.predicate_counts)
    # With zero predicates there is no negative series at that point.
    zero_point = table.points[0]
    assert "NPRED-NEG" not in zero_point.measurements
    with_preds = table.points[-1]
    assert "NPRED-NEG" in with_preds.measurements


def test_figure7_sweeps_collection_sizes(scale):
    table = figure7(scale)
    assert [point.x_value for point in table.points] == list(scale.node_counts)


def test_figure8_sweeps_positions_per_entry(scale):
    table = figure8(scale)
    assert [point.x_value for point in table.points] == list(scale.pos_per_entry_values)


def test_requested_series_subset_is_respected(scale):
    table = figure5(scale, series=("BOOL", "PPRED-POS"))
    for point in table.points:
        assert set(point.measurements) <= {"BOOL", "PPRED-POS"}


def test_run_all_produces_all_four_figures(scale):
    tables = run_all(scale)
    assert set(tables) == {"figure5", "figure6", "figure7", "figure8"}


def test_scale_presets():
    assert FigureScale.paper().num_nodes == 6000
    assert FigureScale.laptop().num_nodes < FigureScale.paper().num_nodes
    assert FigureScale.smoke().num_nodes <= FigureScale.laptop().num_nodes


def test_measured_times_reflect_the_complexity_ordering(scale):
    """COMP should not beat PPRED as the data grows (shape check, generous)."""
    table = figure8(scale)
    last_point = table.points[-1]
    ppred = last_point.seconds("PPRED-POS")
    comp = last_point.seconds("COMP-POS")
    assert ppred is not None and comp is not None
    assert ppred <= comp * 2.0
