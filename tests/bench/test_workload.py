"""Tests for the benchmark workload generator."""

from __future__ import annotations

import pytest

from repro.bench.workload import (
    WorkloadSpec,
    bool_query,
    predicate_query,
    workload_queries,
)
from repro.exceptions import WorkloadError
from repro.languages import ast
from repro.languages.classify import LanguageClass, classify_query

TOKENS = ["alpha", "beta", "gamma", "delta", "epsilon"]


def test_bool_query_is_a_conjunction_with_requested_tokens():
    query = bool_query(TOKENS[:3])
    assert classify_query(query) is LanguageClass.BOOL_NONEG
    assert ast.query_tokens(query) == {"alpha", "beta", "gamma"}
    assert ast.query_measures(query)["toks_Q"] == 3


def test_bool_query_requires_tokens():
    with pytest.raises(WorkloadError):
        bool_query([])


@pytest.mark.parametrize("num_tokens", [1, 2, 3, 4, 5])
@pytest.mark.parametrize("num_predicates", [0, 1, 2, 3, 4])
def test_positive_query_has_requested_measures(num_tokens, num_predicates):
    if num_predicates > 0 and num_tokens < 2:
        pytest.skip("predicates need two tokens")
    spec = WorkloadSpec(
        num_tokens=num_tokens,
        num_predicates=num_predicates,
        predicate_kind="positive" if num_predicates else "none",
        tokens=TOKENS,
    )
    query = predicate_query(spec)
    measures = ast.query_measures(query)
    assert measures["toks_Q"] == num_tokens
    assert measures["preds_Q"] == num_predicates
    assert query.is_closed()


def test_positive_queries_classify_as_ppred_and_negative_as_npred():
    positive = predicate_query(
        WorkloadSpec(num_tokens=3, num_predicates=2, predicate_kind="positive", tokens=TOKENS)
    )
    negative = predicate_query(
        WorkloadSpec(num_tokens=3, num_predicates=2, predicate_kind="negative", tokens=TOKENS)
    )
    assert classify_query(positive) is LanguageClass.PPRED
    assert classify_query(negative) is LanguageClass.NPRED


def test_without_predicates_classification_is_ppred_or_cheaper():
    query = predicate_query(
        WorkloadSpec(num_tokens=2, num_predicates=0, predicate_kind="none", tokens=TOKENS)
    )
    assert classify_query(query) in (LanguageClass.PPRED, LanguageClass.BOOL_NONEG)


def test_workload_queries_bundle():
    queries = workload_queries(TOKENS, num_tokens=3, num_predicates=2)
    assert set(queries) == {"BOOL", "POSITIVE", "NEGATIVE"}
    zero_pred = workload_queries(TOKENS, num_tokens=3, num_predicates=0)
    assert "NEGATIVE" not in zero_pred


def test_invalid_specs_raise():
    with pytest.raises(WorkloadError):
        WorkloadSpec(num_tokens=0, tokens=TOKENS)
    with pytest.raises(WorkloadError):
        WorkloadSpec(num_tokens=1, num_predicates=1, tokens=TOKENS)
    with pytest.raises(WorkloadError):
        WorkloadSpec(num_tokens=3, tokens=TOKENS[:2])
    with pytest.raises(WorkloadError):
        WorkloadSpec(num_tokens=2, predicate_kind="sideways", tokens=TOKENS)
