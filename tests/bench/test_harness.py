"""Tests for the experiment harness and reporting (smoke scale)."""

from __future__ import annotations

import pytest

from repro.bench.harness import SERIES, ExperimentHarness, ExperimentTable
from repro.bench.reporting import (
    ordering_check,
    render_report,
    shape_summary,
    table_to_csv,
    table_to_text,
)
from repro.corpus.synthetic import generate_inex_like_collection
from repro.exceptions import WorkloadError
from repro.index import InvertedIndex


@pytest.fixture(scope="module")
def harness() -> ExperimentHarness:
    collection = generate_inex_like_collection(
        num_nodes=40, tokens_per_node=60, pos_per_entry=2
    )
    return ExperimentHarness(InvertedIndex(collection), repeats=1)


@pytest.fixture(scope="module")
def point(harness):
    return harness.run_point(
        3, ["usability", "software", "testing"], num_tokens=3, num_predicates=2
    )


def test_run_point_measures_every_series(point):
    assert set(point.measurements) == set(SERIES)
    for measurement in point.measurements.values():
        assert measurement.elapsed_seconds >= 0
        assert measurement.matches >= 0


def test_all_engines_report_consistent_match_counts_for_positive_series(point):
    # PPRED, NPRED and COMP all evaluate the same positive-predicate query.
    matches = {
        name: point.measurements[name].matches
        for name in ("PPRED-POS", "NPRED-POS", "COMP-POS")
    }
    assert len(set(matches.values())) == 1, matches


def test_negative_series_agree_with_each_other(point):
    assert (
        point.measurements["NPRED-NEG"].matches
        == point.measurements["COMP-NEG"].matches
    )


def test_time_engine_rejects_unknown_engine(harness):
    from repro.bench.workload import bool_query

    with pytest.raises(WorkloadError):
        harness.time_engine("quantum", bool_query(["usability"]))


def test_repeats_must_be_positive():
    collection = generate_inex_like_collection(num_nodes=10, pos_per_entry=2)
    with pytest.raises(WorkloadError):
        ExperimentHarness(InvertedIndex(collection), repeats=0)


def test_experiment_table_rows_and_series(point):
    table = ExperimentTable("demo", "query tokens", [point])
    rows = table.to_rows()
    assert rows[0]["query tokens"] == 3
    assert set(table.series_names()) == set(SERIES)
    curve = table.series("BOOL")
    assert curve and curve[0][0] == 3


def test_reporting_renders_text_and_csv(point):
    table = ExperimentTable("demo", "query tokens", [point])
    text = table_to_text(table)
    assert "demo" in text and "BOOL (ms)" in text
    csv_text = table_to_csv(table)
    assert csv_text.splitlines()[0].startswith("query tokens,")
    assert render_report([table])


def test_ordering_check_and_shape_summary(point):
    table = ExperimentTable("demo", "query tokens", [point])
    # A series is trivially "not slower" than itself.
    assert ordering_check(table, "BOOL", "BOOL")
    summary = shape_summary(table)
    assert summary, "shape summary should contain at least one claim"
    assert all(line.startswith("[") for line in summary)
