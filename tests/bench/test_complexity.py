"""Tests for the analytic complexity hierarchy (Figure 3)."""

from __future__ import annotations

import math

import pytest

from repro.bench.complexity import (
    HIERARCHY,
    QueryParameters,
    bool_bound,
    bool_noneg_bound,
    comp_bound,
    dominates,
    hierarchy_table,
    npred_bound,
    ppred_bound,
)
from repro.index.statistics import ComplexityParameters

DATA = ComplexityParameters(
    cnodes=6000, pos_per_cnode=400, entries_per_token=3600, pos_per_entry=25
)
QUERY = QueryParameters(toks_q=3, preds_q=2, ops_q=4)


def test_formulas_match_figure3():
    assert bool_noneg_bound(DATA, QUERY) == 3600 * 3 * 5
    assert bool_bound(DATA, QUERY) == 6000 * 3 * 5
    assert ppred_bound(DATA, QUERY) == 3600 * 25 * 3 * 7
    assert comp_bound(DATA, QUERY) == 6000 * (400**3) * 7
    assert npred_bound(DATA, QUERY, arity=2) == ppred_bound(DATA, QUERY) * min(
        2**2, math.factorial(3)
    )


def test_hierarchy_ordering_on_realistic_parameters():
    # BOOL-NONEG <= BOOL, PPRED <= NPRED <= COMP for inverted lists that are
    # (much) smaller than the full position space.
    assert dominates("BOOL-NONEG", "BOOL", DATA, QUERY)
    assert dominates("PPRED", "NPRED", DATA, QUERY)
    assert dominates("NPRED", "COMP", DATA, QUERY)
    assert dominates("BOOL", "COMP", DATA, QUERY)


def test_npred_threads_capped_by_factorial():
    many_predicates = QueryParameters(toks_q=3, preds_q=10, ops_q=0)
    assert npred_bound(DATA, many_predicates, arity=2) == ppred_bound(
        DATA, many_predicates
    ) * math.factorial(3)


def test_bounds_scale_with_their_driving_parameter():
    bigger_lists = ComplexityParameters(
        cnodes=6000, pos_per_cnode=400, entries_per_token=7200, pos_per_entry=25
    )
    assert ppred_bound(bigger_lists, QUERY) == 2 * ppred_bound(DATA, QUERY)
    assert comp_bound(bigger_lists, QUERY) == comp_bound(DATA, QUERY)

    longer_docs = ComplexityParameters(
        cnodes=6000, pos_per_cnode=800, entries_per_token=3600, pos_per_entry=25
    )
    assert comp_bound(longer_docs, QUERY) == 8 * comp_bound(DATA, QUERY)
    assert ppred_bound(longer_docs, QUERY) == ppred_bound(DATA, QUERY)


def test_hierarchy_table_lists_every_language():
    table = dict(hierarchy_table(DATA, QUERY))
    assert set(table) == set(HIERARCHY)
    assert all(value > 0 for value in table.values())


def test_query_parameter_helper():
    assert QUERY.operator_factor == 7
