"""The performance observatory core: timing, schema, the comparison gate."""

from __future__ import annotations

import json

import pytest

from repro.bench.perf import (
    SCHEMA_VERSION,
    SuiteRun,
    Timing,
    available_suites,
    compare_results,
    env_fingerprint,
    load_results,
    profile_call,
    register_suite,
    render_comparison,
    run_suites,
    time_call,
)
from repro.exceptions import ReproError


# --------------------------------------------------------------------- timing
def test_time_call_runs_warmup_then_repeats():
    calls = []
    timing = time_call(lambda: calls.append(1), repeats=3, warmup=2)
    assert len(calls) == 5
    assert len(timing.samples) == 3
    assert timing.min <= timing.mean <= timing.max


def test_time_call_rejects_bad_arguments():
    with pytest.raises(ReproError):
        time_call(lambda: None, repeats=0)
    with pytest.raises(ReproError):
        time_call(lambda: None, warmup=-1)


def test_timing_statistics():
    timing = Timing((3.0, 1.0, 2.0))
    assert timing.min == 1.0
    assert timing.mean == 2.0
    assert timing.max == 3.0


def test_profile_call_reports_hotspots():
    report = profile_call(lambda: sorted(range(500)), top=5)
    assert "cumulative" in report


# --------------------------------------------------------------------- schema
def test_suite_run_serializes_the_documented_schema():
    run = SuiteRun("unit", quick=True)
    run.corpus = {"nodes": 10}
    run.case("fast/one", lambda: None, repeats=2, warmup=0,
             items=4, verified=True, extra={"matches": 7})
    payload = run.to_dict()
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["suite"] == "unit"
    assert payload["quick"] is True
    assert payload["corpus"] == {"nodes": 10}
    assert set(payload["env"]) == {
        "python", "implementation", "platform", "machine", "cpu_count",
    }
    (case,) = payload["cases"]
    assert case["name"] == "fast/one"
    assert case["repeats"] == 2 and case["warmup"] == 0
    assert case["min_seconds"] <= case["mean_seconds"] <= case["max_seconds"]
    assert case["throughput_per_s"] == pytest.approx(4 / case["min_seconds"])
    assert case["verified"] is True
    assert case["extra"] == {"matches": 7}
    json.dumps(payload)  # JSON-serializable end to end


def test_env_fingerprint_has_concrete_values():
    env = env_fingerprint()
    assert env["python"] and env["platform"]
    assert env["cpu_count"] >= 1


def test_builtin_suites_are_registered():
    names = {name for name, _ in available_suites()}
    assert {"hierarchy", "access_modes", "topk", "sharding",
            "live_ingest"} <= names


# ----------------------------------------------------------------- the runner
@register_suite("unit_test_suite", "a tiny suite used by the unit tests")
def _unit_suite(run: SuiteRun) -> None:
    run.corpus = {"nodes": 1}
    run.case("noop/a", lambda: None, repeats=2, warmup=0)
    run.case("noop/b", lambda: sum(range(100)), repeats=2, warmup=0)


def test_run_suites_writes_normalized_json(tmp_path):
    (path,) = run_suites(["unit_test_suite"], quick=True, out_dir=tmp_path)
    assert path.name == "BENCH_unit_test_suite.json"
    payload = json.loads(path.read_text())
    assert payload["schema_version"] == SCHEMA_VERSION
    assert [case["name"] for case in payload["cases"]] == ["noop/a", "noop/b"]


def test_run_suites_rejects_unknown_names(tmp_path):
    with pytest.raises(ReproError, match="unknown suite"):
        run_suites(["no_such_suite"], quick=True, out_dir=tmp_path)


# ------------------------------------------------------------------- the gate
def _write_result(path, suite, cases):
    payload = {
        "schema_version": SCHEMA_VERSION,
        "suite": suite,
        "created_unix": 0.0,
        "quick": True,
        "env": {},
        "corpus": {},
        "cases": [
            {
                "name": name,
                "repeats": 2,
                "warmup": 0,
                "min_seconds": seconds,
                "mean_seconds": seconds,
                "max_seconds": seconds,
                "throughput_per_s": None,
                "verified": None,
                "extra": {},
            }
            for name, seconds in cases
        ],
    }
    path.write_text(json.dumps(payload))
    return path


def test_compare_identical_results_passes(tmp_path):
    base = _write_result(tmp_path / "BENCH_a.json", "a", [("x", 0.010)])
    deltas, notes, regressions = compare_results(base, base, fail_over_pct=10.0)
    assert [d.pct for d in deltas] == [0.0]
    assert not notes and not regressions
    assert "OK:" in render_comparison(deltas, notes, regressions, 10.0)


def test_compare_detects_a_50_percent_slowdown(tmp_path):
    base = _write_result(tmp_path / "base.json", "a", [("x", 0.010), ("y", 0.010)])
    cur = _write_result(tmp_path / "cur.json", "a", [("x", 0.015), ("y", 0.010)])
    deltas, notes, regressions = compare_results(base, cur, fail_over_pct=25.0)
    assert len(regressions) == 1
    assert regressions[0].name == "x"
    assert regressions[0].pct == pytest.approx(50.0)
    rendered = render_comparison(deltas, notes, regressions, 25.0)
    assert "<< REGRESSION" in rendered and "FAIL:" in rendered


def test_compare_tolerates_slowdowns_under_threshold(tmp_path):
    base = _write_result(tmp_path / "base.json", "a", [("x", 0.010)])
    cur = _write_result(tmp_path / "cur.json", "a", [("x", 0.011)])
    _, _, regressions = compare_results(base, cur, fail_over_pct=25.0)
    assert not regressions


def test_unmatched_cases_are_notes_not_failures(tmp_path):
    base = _write_result(tmp_path / "base.json", "a", [("gone", 0.010)])
    cur = _write_result(tmp_path / "cur.json", "a", [("new", 0.010)])
    deltas, notes, regressions = compare_results(base, cur, fail_over_pct=10.0)
    assert not deltas and not regressions
    assert any("missing from current" in note for note in notes)
    assert any("no baseline" in note for note in notes)


def test_compare_accepts_directories(tmp_path):
    base_dir = tmp_path / "base"
    cur_dir = tmp_path / "cur"
    base_dir.mkdir()
    cur_dir.mkdir()
    _write_result(base_dir / "BENCH_a.json", "a", [("x", 0.010)])
    _write_result(cur_dir / "BENCH_a.json", "a", [("x", 0.020)])
    _, _, regressions = compare_results(base_dir, cur_dir, fail_over_pct=50.0)
    assert len(regressions) == 1


def test_load_results_rejects_schema_mismatch(tmp_path):
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text(json.dumps({"schema_version": 999, "suite": "a", "cases": []}))
    with pytest.raises(ReproError, match="schema_version"):
        load_results(bad)


def test_load_results_rejects_missing_paths(tmp_path):
    with pytest.raises(ReproError, match="does not exist"):
        load_results(tmp_path / "nope.json")
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(ReproError, match="no BENCH"):
        load_results(empty)
