"""Workload capture, synthetic zipfian workloads, and in-process replay."""

from __future__ import annotations

import json

import pytest

from repro.bench.capture import (
    CAPTURE_VERSION,
    WorkloadCapture,
    load_workload,
    query_pool_from_collection,
    synthetic_zipf_workload,
    zipf_weights,
)
from repro.bench.replay import EngineTarget, render_replay_report, replay_workload
from repro.core.engine import FullTextEngine
from repro.corpus.synthetic import generate_inex_like_collection
from repro.exceptions import ReproError


@pytest.fixture(scope="module")
def collection():
    return generate_inex_like_collection(
        num_nodes=120, tokens_per_node=50, pos_per_entry=2
    )


# -------------------------------------------------------------------- capture
def test_capture_round_trip(tmp_path):
    path = tmp_path / "workload.jsonl"
    capture = WorkloadCapture(path)
    assert capture.record(query="'alpha'", top_k=10, request_id="r1",
                          elapsed_ms=1.234, status=200)
    assert capture.record(query="'beta'", top_k=None, status=504)
    capture.close()
    records = load_workload(path)  # default: only status-200 records replay
    assert len(records) == 1
    (record,) = records
    assert record["v"] == CAPTURE_VERSION
    assert record["q"] == "'alpha'"
    assert record["top_k"] == 10
    assert record["request_id"] == "r1"
    assert record["elapsed_ms"] == 1.234


def test_capture_every_line_is_complete_json(tmp_path):
    """Per-line flush: a capture killed mid-stream stays parseable."""
    path = tmp_path / "flush.jsonl"
    capture = WorkloadCapture(path)
    for index in range(5):
        capture.record(query=f"'q{index}'", top_k=5)
    # Read WITHOUT closing: every line must already be durable and complete.
    lines = path.read_text().splitlines()
    assert len(lines) == 5
    for line in lines:
        json.loads(line)
    capture.close()


def test_capture_sampling_is_seeded_and_bounded(tmp_path):
    capture = WorkloadCapture(tmp_path / "s.jsonl", sample=0.5, seed=7)
    for index in range(200):
        capture.record(query=f"'q{index}'", top_k=5)
    capture.close()
    assert capture.recorded + capture.skipped == 200
    assert 50 < capture.recorded < 150  # ~half, seeded so never flaky
    with pytest.raises(ReproError, match="sample"):
        WorkloadCapture(tmp_path / "bad.jsonl", sample=0.0)


def test_load_workload_drops_a_torn_tail_only(tmp_path):
    path = tmp_path / "torn.jsonl"
    good = json.dumps({"v": 1, "q": "'a'", "top_k": 5, "status": 200})
    path.write_text(good + "\n" + '{"v": 1, "q": "\'b')  # cut mid-write
    records = load_workload(path)
    assert [record["q"] for record in records] == ["'a'"]


def test_load_workload_raises_on_mid_file_corruption(tmp_path):
    path = tmp_path / "corrupt.jsonl"
    good = json.dumps({"v": 1, "q": "'a'", "top_k": 5})
    path.write_text("not json\n" + good + "\n")
    with pytest.raises(ReproError, match="corrupt"):
        load_workload(path)


def test_load_workload_rejects_empty_workloads(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(ReproError, match="no replayable"):
        load_workload(path)


# ------------------------------------------------------------------ synthetic
def test_zipf_weights_shape():
    weights = zipf_weights(4, 1.0)
    assert weights == [1.0, 0.5, 1 / 3, 0.25]
    assert zipf_weights(3, 0.0) == [1.0, 1.0, 1.0]
    with pytest.raises(ReproError):
        zipf_weights(0, 1.0)
    with pytest.raises(ReproError):
        zipf_weights(4, -1.0)


def test_synthetic_workload_is_deterministic_and_skewed():
    pool = [f"'q{index}'" for index in range(16)]
    one = synthetic_zipf_workload(pool, count=400, skew=1.2, seed=3)
    two = synthetic_zipf_workload(pool, count=400, skew=1.2, seed=3)
    assert one == two  # same seed, same stream
    counts = {}
    for record in one:
        counts[record["q"]] = counts.get(record["q"], 0) + 1
    assert counts["'q0'"] > counts.get("'q15'", 0)  # the head is hot
    assert all(record["status"] == 200 for record in one)


def test_query_pool_prefers_hot_tokens(collection):
    pool = query_pool_from_collection(collection, size=12)
    assert len(pool) == 12
    assert all(query.startswith("'") for query in pool)
    engine = FullTextEngine.from_collection(collection, access_mode="fast")
    try:
        # The head of the pool is the hottest token: it must match widely.
        assert len(engine.search(pool[0])) > 0
    finally:
        engine.close()


# --------------------------------------------------------------------- replay
def test_replay_verifies_bit_identical_and_reports(collection):
    pool = query_pool_from_collection(collection, size=8)
    records = synthetic_zipf_workload(pool, count=120, skew=1.1, seed=1)
    reference = FullTextEngine.from_collection(
        collection, scoring="tfidf", access_mode="fast"
    )
    target_engine = FullTextEngine.from_collection(
        collection, scoring="tfidf", access_mode="fast", cache_size=64
    )
    try:
        report = replay_workload(
            records, EngineTarget(target_engine), reference,
            warm_passes=1,
        )
    finally:
        reference.close()
        target_engine.close()
    assert report["verified"] is True
    assert report["verify_mismatches"] == 0
    assert report["records"] == 120
    assert report["distinct_queries"] == len(set(pool) & {r["q"] for r in records})
    latency = report["latency_ms"]
    assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]
    assert report["throughput_per_s"] > 0
    assert report["cache_hit_curve"][-1]["requests"] == 120
    rendered = render_replay_report(report)
    assert "bit-identical" in rendered


def test_replay_verification_catches_a_diverging_target(collection):
    pool = query_pool_from_collection(collection, size=4)
    records = synthetic_zipf_workload(pool, count=20, skew=1.0, seed=2)
    reference = FullTextEngine.from_collection(
        collection, scoring="tfidf", access_mode="fast"
    )
    lying = FullTextEngine.from_collection(
        collection, scoring="tfidf", access_mode="fast"
    )

    class LyingTarget(EngineTarget):
        def search(self, record):
            results = super().search(record)
            return [(node_id, score * 1.000001) for node_id, score in results]

    try:
        with pytest.raises(ReproError, match="verification failed"):
            replay_workload(records, LyingTarget(lying), reference)
    finally:
        reference.close()
        lying.close()


def test_warm_phase_raises_the_measured_hit_rate(collection):
    """The explicit warm phase is what makes the measure phase cache-hot."""
    pool = query_pool_from_collection(collection, size=8)
    records = synthetic_zipf_workload(pool, count=80, skew=0.8, seed=4)

    def measure(warm_passes: int) -> dict:
        target = FullTextEngine.from_collection(
            collection, scoring="tfidf", access_mode="fast", cache_size=64
        )
        try:
            # verify=False: verification itself would warm the target cache.
            return replay_workload(
                records, EngineTarget(target),
                verify=False, warm_passes=warm_passes,
            )
        finally:
            target.close()

    cold = measure(warm_passes=0)
    warm = measure(warm_passes=1)
    assert warm["warm_hit_rate"] is not None
    assert warm["measure_hit_rate"] == 1.0  # every shape pre-warmed
    assert warm["measure_hit_rate"] > cold["measure_hit_rate"]
    # The cold run's first chunk pays the misses the warm run never sees.
    assert cold["cache_hit_curve"][0]["hit_rate"] < 1.0


def test_replay_rejects_empty_and_unreferenced_runs(collection):
    engine = FullTextEngine.from_collection(collection, access_mode="fast")
    try:
        with pytest.raises(ReproError, match="empty"):
            replay_workload([], EngineTarget(engine))
        with pytest.raises(ReproError, match="reference"):
            replay_workload(
                [{"q": "'a'", "top_k": 5}], EngineTarget(engine), None
            )
    finally:
        engine.close()
