"""Fixtures for the telemetry tests: one deterministic mid-size corpus."""

from __future__ import annotations

import pytest

from repro.corpus.synthetic import generate_inex_like_collection


@pytest.fixture(scope="session")
def collection():
    """Deterministic corpus big enough for non-trivial rankings and pruning."""
    return generate_inex_like_collection(
        num_nodes=300, tokens_per_node=60, pos_per_entry=3
    )
