"""ReopenableLog: flush-per-line JSONL sinks that survive logrotate."""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro.telemetry.logs import ReopenableLog, install_sighup_reopen, reopen_all


def test_quacks_like_a_text_stream(tmp_path):
    log = ReopenableLog(tmp_path / "access.jsonl")
    print(json.dumps({"event": "one"}), file=log, flush=True)
    # Visible immediately, before close: the flush-per-line contract.
    assert json.loads((tmp_path / "access.jsonl").read_text()) == {"event": "one"}
    log.close()


def test_reopen_follows_a_logrotate_rename(tmp_path):
    path = tmp_path / "rotating.jsonl"
    log = ReopenableLog(path)
    print('{"line": 1}', file=log, flush=True)

    os.rename(path, tmp_path / "rotating.jsonl.1")  # logrotate moves the file
    print('{"line": 2}', file=log, flush=True)  # still goes to the old inode
    assert reopen_all() >= 1
    print('{"line": 3}', file=log, flush=True)  # lands in the fresh file
    log.close()

    rotated = (tmp_path / "rotating.jsonl.1").read_text().splitlines()
    fresh = path.read_text().splitlines()
    assert [json.loads(line)["line"] for line in rotated] == [1, 2]
    assert [json.loads(line)["line"] for line in fresh] == [3]


def test_close_deregisters_from_reopen_all(tmp_path):
    log = ReopenableLog(tmp_path / "gone.jsonl")
    log.close()
    before = reopen_all()
    other = ReopenableLog(tmp_path / "other.jsonl")
    assert reopen_all() == before + 1
    other.close()


@pytest.mark.skipif(not hasattr(signal, "SIGHUP"), reason="needs SIGHUP")
def test_sighup_triggers_the_reopen(tmp_path):
    previous = signal.getsignal(signal.SIGHUP)
    path = tmp_path / "hup.jsonl"
    log = ReopenableLog(path)
    try:
        assert install_sighup_reopen()
        print('{"line": 1}', file=log, flush=True)
        os.rename(path, tmp_path / "hup.jsonl.1")
        os.kill(os.getpid(), signal.SIGHUP)
        print('{"line": 2}', file=log, flush=True)
        assert json.loads(path.read_text())["line"] == 2
    finally:
        log.close()
        signal.signal(signal.SIGHUP, previous)
