"""Slow-query log: threshold gating, JSONL shape, broken-stream tolerance."""

from __future__ import annotations

import io
import json

import pytest

from repro.telemetry.instruments import SLOW_QUERIES_TOTAL
from repro.telemetry.slowlog import SlowQueryLog
from repro.telemetry.trace import Trace


def test_threshold_must_be_positive():
    with pytest.raises(ValueError):
        SlowQueryLog(io.StringIO(), 0.0)


def test_fast_queries_are_not_recorded():
    stream = io.StringIO()
    log = SlowQueryLog(stream, threshold_ms=10.0)
    assert log.maybe_record(9.99, query="'a'") is False
    assert stream.getvalue() == ""
    assert log.recorded == 0


def test_slow_query_writes_one_json_line_with_trace():
    stream = io.StringIO()
    log = SlowQueryLog(stream, threshold_ms=5.0)
    before = SLOW_QUERIES_TOTAL.value()
    trace = Trace("feedface00000001")
    with trace.span("engine.search"):
        pass
    trace.end()
    assert log.maybe_record(12.5, query="'a' AND 'b'", trace=trace, status=200)
    assert SLOW_QUERIES_TOTAL.value() == before + 1
    assert log.recorded == 1

    (line,) = stream.getvalue().strip().split("\n")
    entry = json.loads(line)
    assert entry["trace_id"] == "feedface00000001"
    assert entry["query"] == "'a' AND 'b'"
    assert entry["latency_ms"] == 12.5
    assert entry["threshold_ms"] == 5.0
    assert entry["status"] == 200
    assert entry["trace"]["name"] == "request"
    assert entry["trace"]["children"][0]["name"] == "engine.search"


def test_explicit_trace_id_wins_without_trace_object():
    stream = io.StringIO()
    log = SlowQueryLog(stream, threshold_ms=1.0)
    assert log.maybe_record(2.0, query="'a'", trace_id="cafe000000000002")
    entry = json.loads(stream.getvalue())
    assert entry["trace_id"] == "cafe000000000002"
    assert "trace" not in entry


def test_threshold_is_inclusive():
    stream = io.StringIO()
    log = SlowQueryLog(stream, threshold_ms=5.0)
    assert log.maybe_record(5.0, query="'a'") is True


def test_broken_stream_never_raises():
    stream = io.StringIO()
    stream.close()
    log = SlowQueryLog(stream, threshold_ms=1.0)
    assert log.maybe_record(100.0, query="'a'") is False
    assert log.recorded == 0
