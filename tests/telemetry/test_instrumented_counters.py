"""End-to-end counter wiring: every layer reports into the shared registry.

The instruments are process-global, so these tests assert *deltas* around
the operations they drive, never absolute values -- other tests in the same
session legitimately move the counters too.
"""

from __future__ import annotations

import threading

from repro.core.engine import FullTextEngine
from repro.telemetry import instruments
from repro.telemetry.registry import render_metrics

QUERY = "'usability' AND 'software'"


def make_engine(collection, **kwargs):
    defaults = dict(scoring="tfidf", access_mode="fast")
    defaults.update(kwargs)
    return FullTextEngine.from_collection(collection, **defaults)


def test_query_counters_advance_per_search(collection):
    engine = make_engine(collection)
    try:
        queries_before = instruments.QUERIES_TOTAL.value("bool")
        latency_before = instruments.QUERY_SECONDS.count()
        next_before = instruments.CURSOR_OPS_TOTAL.value("next_entry")
        results = engine.search(QUERY)
        assert instruments.QUERIES_TOTAL.value("bool") == queries_before + 1
        assert instruments.QUERY_SECONDS.count() == latency_before + 1
        grew = instruments.CURSOR_OPS_TOTAL.value("next_entry") - next_before
        assert grew == results.cursor_stats.next_entry_calls > 0
    finally:
        engine.close()


def test_topk_counters_track_the_collector(collection):
    engine = make_engine(collection)
    try:
        scored_before = instruments.TOPK_SCORED_TOTAL.value()
        results = engine.search(QUERY, top_k=3, explain=True)
        top_k = results.metadata["explain"]["top_k"]
        scored_delta = instruments.TOPK_SCORED_TOTAL.value() - scored_before
        assert scored_delta == top_k["scored"] > 0
    finally:
        engine.close()


def test_cache_counters_see_miss_hit_eviction_invalidation(collection):
    engine = make_engine(collection, shards=2, cache_size=1)
    try:
        miss_before = instruments.CACHE_LOOKUPS_TOTAL.value("miss")
        hit_before = instruments.CACHE_LOOKUPS_TOTAL.value("hit")
        evict_before = instruments.CACHE_EVICTIONS_TOTAL.value()

        engine.search(QUERY, top_k=3)  # miss, fills the single slot
        engine.search(QUERY, top_k=3)  # hit
        engine.search("'usability'", top_k=3)  # miss, evicts the first entry

        assert instruments.CACHE_LOOKUPS_TOTAL.value("miss") == miss_before + 2
        assert instruments.CACHE_LOOKUPS_TOTAL.value("hit") == hit_before + 1
        assert instruments.CACHE_EVICTIONS_TOTAL.value() == evict_before + 1
    finally:
        engine.close()


def test_scatter_task_counter_counts_shards_per_query(collection):
    engine = make_engine(collection, shards=3, cache_size=0)
    try:
        before = instruments.SCATTER_TASKS_TOTAL.value("thread")
        engine.search(QUERY)
        assert instruments.SCATTER_TASKS_TOTAL.value("thread") == before + 3
    finally:
        engine.close()


def test_process_scatter_task_counter(collection):
    engine = make_engine(collection, shards=2, workers="process")
    try:
        before = instruments.SCATTER_TASKS_TOTAL.value("process")
        engine.search(QUERY, top_k=3)
        assert instruments.SCATTER_TASKS_TOTAL.value("process") == before + 2
    finally:
        engine.close()


def test_wal_fsync_counter_counts_batches(tmp_path):
    from repro.segments.wal import WriteAheadLog

    appends_before = instruments.WAL_APPENDS_TOTAL.value()
    fsyncs_before = instruments.WAL_FSYNCS_TOTAL.value()
    wal = WriteAheadLog(tmp_path / "wal.jsonl", sync_every=2)
    for seq in range(5):
        wal.append({"seq": seq})
    wal.close()  # the close-time sync commits the trailing odd record
    assert instruments.WAL_APPENDS_TOTAL.value() == appends_before + 5
    assert instruments.WAL_FSYNCS_TOTAL.value() == fsyncs_before + 3


def test_write_plane_counters_wal_seals_compactions(collection, tmp_path):
    appends_before = instruments.WAL_APPENDS_TOTAL.value()
    seals_before = instruments.MEMTABLE_SEALS_TOTAL.value()
    compactions_before = instruments.COMPACTIONS_TOTAL.value()
    merged_before = instruments.COMPACTION_SEGMENTS_MERGED_TOTAL.value()

    engine = make_engine(
        collection, live=True, live_dir=tmp_path / "live", flush_threshold=4
    )
    try:
        for index in range(12):
            engine.add_document(f"usability software probe {index}")
        engine.flush()
        report = engine.compact()
    finally:
        engine.close()

    assert instruments.WAL_APPENDS_TOTAL.value() >= appends_before + 12
    assert instruments.MEMTABLE_SEALS_TOTAL.value() >= seals_before + 3
    assert (
        instruments.COMPACTIONS_TOTAL.value()
        == compactions_before + report["merges"]
    )
    assert (
        instruments.COMPACTION_SEGMENTS_MERGED_TOTAL.value()
        == merged_before + report["segments_merged"]
    )
    assert instruments.COMPACTION_SECONDS.count() > 0


def test_scrape_is_monotonic_under_mixed_load(collection, tmp_path):
    """Counters never go backwards while scatter threads, a live-index
    writer (WAL + seals + compaction) and the scraper all run at once."""
    searcher = make_engine(collection, shards=2, cache_size=8)
    writer = make_engine(
        collection, live=True, live_dir=tmp_path / "live", flush_threshold=4
    )
    watched = (
        lambda: instruments.QUERIES_TOTAL.value("bool"),
        lambda: instruments.CURSOR_OPS_TOTAL.value("next_entry"),
        lambda: instruments.SCATTER_TASKS_TOTAL.value("thread"),
        lambda: instruments.WAL_APPENDS_TOTAL.value(),
        lambda: instruments.MEMTABLE_SEALS_TOTAL.value(),
        lambda: instruments.COMPACTIONS_TOTAL.value(),
    )
    stop = threading.Event()
    violations: list[int] = []
    errors: list[BaseException] = []

    def scrape() -> None:
        last = [reader() for reader in watched]
        while not stop.is_set():
            render_metrics()  # the full exposition must never crash mid-load
            current = [reader() for reader in watched]
            for index, (prev, now) in enumerate(zip(last, current)):
                if now < prev:
                    violations.append(index)
            last = current

    def run(target) -> None:
        try:
            target()
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    def query_loop() -> None:
        for _ in range(25):
            searcher.search(QUERY, top_k=5)

    def write_loop() -> None:
        for index in range(40):
            writer.add_document(f"usability software churn {index}")
            if index % 8 == 7:
                writer.flush()
        writer.compact()

    scraper = threading.Thread(target=scrape)
    workers = [
        threading.Thread(target=run, args=(query_loop,)),
        threading.Thread(target=run, args=(write_loop,)),
    ]
    scraper.start()
    try:
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
    finally:
        stop.set()
        scraper.join()
        searcher.close()
        writer.close()
    assert not errors, errors
    assert not violations, f"counters went backwards at indexes {set(violations)}"
