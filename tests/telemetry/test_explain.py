"""EXPLAIN ANALYZE contract: counts pin CursorStats, results stay identical."""

from __future__ import annotations

import pytest

from repro.core.engine import FullTextEngine
from repro.index.cursor import CursorStats
from repro.telemetry.explain import render_explain, sum_counts

QUERY = "'usability' AND 'software'"
DIST_QUERY = "dist('usability', 'software', 40)"


def make_engine(collection, **kwargs):
    defaults = dict(scoring="tfidf", access_mode="paper")
    defaults.update(kwargs)
    return FullTextEngine.from_collection(collection, **defaults)


def assert_same_results(plain, explained):
    assert [(r.node_id, r.score) for r in plain.results] == [
        (r.node_id, r.score) for r in explained.results
    ]
    assert plain.engine == explained.engine
    assert plain.total_matches == explained.total_matches


# ------------------------------------------------------------- single index
def test_explain_counts_equal_cursor_stats_delta(collection):
    engine = make_engine(collection)
    try:
        results = engine.search(QUERY, explain=True)
        payload = results.metadata["explain"]
        assert payload["operator"] == "execute"
        operator_sum = sum_counts(payload["operators"]).as_extended_dict()
        assert operator_sum == payload["cursor_totals"]
        assert operator_sum == results.cursor_stats.as_extended_dict()
        assert operator_sum["next_entry_calls"] > 0
        tokens = {row["token"] for row in payload["operators"]}
        assert tokens == {"usability", "software"}
    finally:
        engine.close()


def test_explained_results_bit_identical_to_plain(collection):
    engine = make_engine(collection)
    try:
        plain = engine.search(QUERY, top_k=5)
        explained = engine.search(QUERY, top_k=5, explain=True)
        assert_same_results(plain, explained)
        assert "explain" not in plain.metadata
        # rows_produced counts evaluation output rows, before the top-k cut
        # is applied to the returned prefix.
        assert (
            explained.metadata["explain"]["rows_produced"]
            == explained.total_matches
        )
    finally:
        engine.close()


def test_explain_reports_topk_collector(collection):
    engine = make_engine(collection)
    try:
        results = engine.search(QUERY, top_k=3, explain=True)
        top_k = results.metadata["explain"]["top_k"]
        assert top_k["k"] == 3
        assert top_k["scored"] >= len(results)
        assert top_k["pruned"] >= 0
        assert isinstance(top_k["gave_up"], bool)
    finally:
        engine.close()


@pytest.mark.parametrize("access_mode", ["paper", "fast"])
def test_explain_shape_is_stable_across_access_modes(collection, access_mode):
    engine = make_engine(collection, access_mode=access_mode)
    try:
        description = engine.explain(QUERY, analyze=True, top_k=5)
        payload = description["analyze"]
        assert payload["access_mode"] == access_mode
        assert payload["engine"] == "bool"
        assert payload["language_class"] == "BOOL-NONEG"
        assert {row["token"] for row in payload["operators"]} == {
            "usability",
            "software",
        }
        rendered = render_explain(payload)
        assert rendered.startswith("EXPLAIN ANALYZE")
        assert "cursor totals:" in rendered
        assert "top-k: k=5" in rendered
    finally:
        engine.close()


def test_explain_distance_query_counts_positions(collection):
    engine = make_engine(collection)
    try:
        results = engine.search(DIST_QUERY, explain=True)
        payload = results.metadata["explain"]
        totals = payload["cursor_totals"]
        assert totals["get_positions_calls"] > 0
        assert totals == sum_counts(payload["operators"]).as_extended_dict()
        assert payload["engine"] in ("ppred", "npred", "comp")
    finally:
        engine.close()


# ----------------------------------------------------------------- cluster
def test_cluster_explain_aggregates_shards_and_bypasses_cache(collection):
    engine = make_engine(collection, shards=3, cache_size=32)
    try:
        warm = engine.search(QUERY, top_k=5)  # populate the cache
        explained = engine.search(QUERY, top_k=5, explain=True)
        assert explained.metadata["cache"] == "bypass"
        assert_same_results(warm, explained)

        payload = explained.metadata["explain"]
        assert payload["operator"] == "scatter"
        assert payload["workers"] == "thread"
        assert payload["cache"] == "bypass"
        assert payload["shard_count"] == 3
        assert len(payload["shards"]) == 3

        merged = CursorStats()
        for shard in payload["shards"]:
            shard_sum = sum_counts(shard["operators"]).as_extended_dict()
            assert shard_sum == shard["cursor_totals"]
            merged.merge(sum_counts(shard["operators"]))
        assert merged.as_extended_dict() == payload["cursor_totals"]

        top_k = payload["top_k"]
        assert top_k["k"] == 5
        assert top_k["scored"] >= len(explained)
    finally:
        engine.close()


def test_cluster_explain_does_not_poison_the_cache(collection):
    engine = make_engine(collection, shards=2, cache_size=32)
    try:
        engine.search(QUERY, top_k=5, explain=True)
        first = engine.search(QUERY, top_k=5)
        assert first.metadata["cache"] == "miss"  # bypass really bypassed
        second = engine.search(QUERY, top_k=5)
        assert second.metadata["cache"] == "hit"
        assert_same_results(first, second)
    finally:
        engine.close()


def test_process_scatter_explain_matches_thread_scatter(collection):
    thread_engine = make_engine(collection, shards=2, workers="thread")
    process_engine = make_engine(collection, shards=2, workers="process")
    try:
        thread_results = thread_engine.search(QUERY, top_k=5, explain=True)
        process_results = process_engine.search(QUERY, top_k=5, explain=True)
        assert_same_results(thread_results, process_results)
        thread_payload = thread_results.metadata["explain"]
        process_payload = process_results.metadata["explain"]
        assert process_payload["workers"] == "process"
        assert process_payload["cursor_totals"] == thread_payload["cursor_totals"]
        rendered = render_explain(process_payload)
        assert "workers=process" in rendered
        assert "shard 0:" in rendered and "shard 1:" in rendered
    finally:
        thread_engine.close()
        process_engine.close()
