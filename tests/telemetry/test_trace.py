"""Span-tree semantics: nesting, timing, export, thread-safety."""

from __future__ import annotations

import re
import threading

from repro.telemetry.trace import Span, Trace, new_trace_id


def test_new_trace_id_is_16_hex_digits():
    ids = {new_trace_id() for _ in range(64)}
    assert len(ids) == 64  # collisions at 64 draws would be astronomical
    for trace_id in ids:
        assert re.fullmatch(r"[0-9a-f]{16}", trace_id)


def test_span_nesting_builds_a_tree():
    root = Span("root")
    child = root.span("child", shard=1)
    grandchild = child.span("grandchild")
    grandchild.end()
    child.end()
    root.end()
    assert [span.name for span in root.children] == ["child"]
    assert [span.name for span in child.children] == ["grandchild"]
    assert child.meta == {"shard": 1}


def test_end_is_idempotent_and_duration_monotonic():
    span = Span("work")
    open_duration = span.duration_ms
    assert open_duration >= 0.0
    span.end()
    first_end = span.ended
    span.end()
    assert span.ended == first_end  # the first end wins
    assert span.duration_ms >= 0.0


def test_context_manager_closes_the_span():
    root = Span("root")
    with root.span("inner") as inner:
        assert inner.ended is None
    assert inner.ended is not None


def test_annotate_merges_metadata():
    span = Span("op", a=1)
    span.annotate(b=2)
    span.annotate(a=3)
    assert span.meta == {"a": 3, "b": 2}
    bare = Span("bare")
    assert bare.meta is None  # no dict allocated until needed
    bare.annotate(x=1)
    assert bare.meta == {"x": 1}


def test_to_dict_shape():
    root = Trace("abc123", query="'a'")
    child = root.span("dispatch.batch", batch_size=3)
    child.end()
    root.end()
    exported = root.to_dict()
    assert exported["trace_id"] == "abc123"
    assert exported["name"] == "request"
    assert isinstance(exported["ts"], float)
    assert exported["meta"] == {"query": "'a'"}
    (batch,) = exported["children"]
    assert batch == {
        "name": "dispatch.batch",
        "duration_ms": batch["duration_ms"],
        "meta": {"batch_size": 3},
    }
    assert batch["duration_ms"] >= 0.0


def test_trace_generates_id_when_not_given():
    assert re.fullmatch(r"[0-9a-f]{16}", Trace().trace_id)


def test_concurrent_child_attachment_loses_nothing():
    root = Span("root")
    per_thread = 500

    def attach(worker: int) -> None:
        for index in range(per_thread):
            root.span(f"w{worker}.{index}").end()

    workers = [
        threading.Thread(target=attach, args=(worker,)) for worker in range(8)
    ]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    assert len(root.children) == 8 * per_thread
    assert len({span.name for span in root.children}) == 8 * per_thread
