"""The live-tier gauge families: exact deltas, withdrawal, scrape safety.

The gauges are process-global and several tests (and the engines they
build) move them concurrently, so every assertion here is a *delta* around
the operation it drives -- the same discipline as the counter tests.  What
makes gauges stricter than counters: every instance must withdraw its
contribution on teardown (WAL close, cache unregister), or long-lived
processes drift.
"""

from __future__ import annotations

import threading

from repro.cluster.cache import QueryCache
from repro.corpus.document import ContextNode
from repro.segments import SegmentManager
from repro.segments.wal import WriteAheadLog
from repro.telemetry import instruments
from repro.telemetry.registry import render_metrics


def node(node_id: int, text: str) -> ContextNode:
    return ContextNode.from_text(node_id, text)


def segments_total() -> float:
    """Sum of the per-tier segment gauge children."""
    value = instruments.gauge_snapshot()["repro_segments"]
    return sum(value.values())


# ------------------------------------------------------------------------ WAL
def test_wal_bytes_track_appends_and_close_withdraws(tmp_path):
    gauge = instruments.WAL_BYTES
    before = gauge.value()
    wal = WriteAheadLog(tmp_path / "gauge.wal", sync_every=100)
    wal.append({"op": "add", "node_id": 1})
    wal.append({"op": "delete", "node_id": 1})
    grown = gauge.value() - before
    assert grown == (tmp_path / "gauge.wal").stat().st_size > 0
    wal.close()
    assert gauge.value() == before  # contribution withdrawn


def test_wal_pending_records_follow_the_sync_batch(tmp_path):
    gauge = instruments.WAL_PENDING_RECORDS
    before = gauge.value()
    wal = WriteAheadLog(tmp_path / "pending.wal", sync_every=100)
    wal.append({"op": "add", "node_id": 1})
    wal.append({"op": "add", "node_id": 2})
    assert gauge.value() - before == 2
    wal.sync()
    assert gauge.value() == before
    wal.append({"op": "add", "node_id": 3})
    assert gauge.value() - before == 1
    wal.close()


def test_wal_reset_withdraws_bytes_and_pending(tmp_path):
    bytes_before = instruments.WAL_BYTES.value()
    pending_before = instruments.WAL_PENDING_RECORDS.value()
    wal = WriteAheadLog(tmp_path / "reset.wal", sync_every=100)
    wal.append({"op": "add", "node_id": 1})
    assert instruments.WAL_BYTES.value() > bytes_before
    wal.reset()
    assert instruments.WAL_BYTES.value() == bytes_before
    assert instruments.WAL_PENDING_RECORDS.value() == pending_before
    wal.close()


# ------------------------------------------------------------- memtable/tiers
def test_memtable_docs_rise_with_adds_and_fall_at_seal():
    gauge = instruments.MEMTABLE_DOCS
    before = gauge.value()
    manager = SegmentManager(flush_threshold=3)
    manager.add(node(0, "alpha beta"))
    manager.add(node(1, "beta gamma"))
    assert gauge.value() - before == 2
    manager.add(node(2, "gamma delta"))  # hits the threshold: auto-seal
    assert gauge.value() == before
    assert len(manager.segments) == 1


def test_segment_tier_gauge_follows_seals_and_compaction():
    segments_before = segments_total()
    backlog_before = instruments.COMPACTION_BACKLOG.value()
    manager = SegmentManager(flush_threshold=2, compaction_fanout=4)
    for i in range(4):
        manager.add(node(i, f"tok{i} common"))
    assert len(manager.segments) == 2
    assert segments_total() - segments_before == 2
    # Two 2-doc segments sit in one tier below fanout: no backlog yet.
    assert instruments.COMPACTION_BACKLOG.value() == backlog_before
    for i in range(4, 8):
        manager.add(node(i, f"tok{i} common"))
    assert len(manager.segments) == 4
    assert instruments.COMPACTION_BACKLOG.value() - backlog_before == 1
    report = manager.compact()
    assert report["merges"] >= 1
    assert instruments.COMPACTION_BACKLOG.value() == backlog_before
    assert segments_total() - segments_before == len(manager.segments)


# ------------------------------------------------------------------ the cache
def test_cache_gauges_track_entries_capacity_and_unregister():
    entries = instruments.QUERY_CACHE_ENTRIES
    capacity = instruments.QUERY_CACHE_CAPACITY
    entries_before = entries.value()
    capacity_before = capacity.value()
    cache = QueryCache(capacity=2)
    assert capacity.value() - capacity_before == 2
    cache.put("a", 1)
    cache.put("b", 2)
    assert entries.value() - entries_before == 2
    cache.put("c", 3)  # evicts the LRU entry: net count stays 2
    assert entries.value() - entries_before == 2
    cache.invalidate()
    assert entries.value() == entries_before
    cache.put("d", 4)
    cache.unregister()
    assert entries.value() == entries_before
    assert capacity.value() == capacity_before
    cache.put("e", 5)  # post-unregister traffic must not re-register
    assert entries.value() == entries_before


def test_unregister_is_idempotent():
    capacity = instruments.QUERY_CACHE_CAPACITY
    before = capacity.value()
    cache = QueryCache(capacity=8)
    cache.unregister()
    cache.unregister()
    assert capacity.value() == before


# -------------------------------------------------------------- the snapshot
def test_gauge_snapshot_covers_every_family():
    snapshot = instruments.gauge_snapshot()
    for name in (
        "repro_wal_bytes",
        "repro_wal_pending_records",
        "repro_memtable_docs",
        "repro_segments",
        "repro_compaction_backlog",
        "repro_query_cache_entries",
        "repro_query_cache_capacity",
        "repro_spool_bytes",
        "repro_http_inflight_requests",
    ):
        assert name in snapshot
    assert isinstance(snapshot["repro_segments"], dict)  # labelled by tier


# -------------------------------------------------------------- scrape safety
def test_scrape_is_safe_while_gauges_move(tmp_path):
    """render_metrics must never tear while writers move gauges underneath."""
    stop = threading.Event()
    errors: list[BaseException] = []

    def writer() -> None:
        count = 0
        while not stop.is_set():
            wal = WriteAheadLog(tmp_path / f"scrape{count % 4}.wal")
            wal.append({"op": "add", "node_id": count})
            wal.close()
            count += 1

    def scraper() -> None:
        try:
            for _ in range(50):
                text = render_metrics()
                assert "repro_wal_bytes" in text
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    writer_thread = threading.Thread(target=writer, daemon=True)
    scrapers = [threading.Thread(target=scraper) for _ in range(3)]
    writer_thread.start()
    for thread in scrapers:
        thread.start()
    for thread in scrapers:
        thread.join(timeout=30)
    stop.set()
    writer_thread.join(timeout=30)
    assert not errors
