"""Registry semantics: metric kinds, exposition format, concurrency."""

from __future__ import annotations

import re
import threading

import pytest

from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    render_metrics,
)

#: One Prometheus text-format sample line:
#: ``name{label="value",...} number`` (labels optional).
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" (?:[+-]?(?:\d+(?:\.\d+)?(?:e[+-]?\d+)?|Inf|NaN))$"
)


def test_counter_inc_and_value():
    registry = MetricsRegistry()
    counter = registry.counter("t_counter", "help")
    assert counter.value() == 0
    counter.inc()
    counter.inc(4)
    assert counter.value() == 5


def test_labelled_counter_children_are_independent():
    registry = MetricsRegistry()
    counter = registry.counter("t_labelled", "help", ("op",))
    counter.labels("next").inc(3)
    counter.labels("seek").inc()
    assert counter.value("next") == 3
    assert counter.value("seek") == 1
    with pytest.raises(ValueError):
        counter.inc()  # labelled family refuses unlabelled increments
    with pytest.raises(ValueError):
        counter.labels("a", "b")  # wrong label arity


def test_gauge_set_inc_dec():
    registry = MetricsRegistry()
    gauge = registry.gauge("t_gauge", "help")
    gauge.set(10)
    gauge.inc(2.5)
    gauge.dec()
    assert gauge.value() == 11.5


def test_histogram_buckets_are_cumulative():
    registry = MetricsRegistry()
    histogram = registry.histogram("t_hist", "help", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 0.5, 5.0):
        histogram.observe(value)
    lines = histogram.render()
    by_line = {line.rsplit(" ", 1)[0]: line.rsplit(" ", 1)[1] for line in lines[2:]}
    assert by_line['t_hist_bucket{le="0.1"}'] == "1"
    assert by_line['t_hist_bucket{le="1"}'] == "3"
    assert by_line['t_hist_bucket{le="+Inf"}'] == "4"
    assert by_line["t_hist_count"] == "4"
    assert float(by_line["t_hist_sum"]) == pytest.approx(6.05)


def test_histogram_boundary_value_lands_in_its_bucket():
    registry = MetricsRegistry()
    histogram = registry.histogram("t_edge", "help", buckets=(1.0,))
    histogram.observe(1.0)  # le="1" is inclusive in Prometheus semantics
    lines = histogram.render()
    assert 't_edge_bucket{le="1"} 1' in lines


def test_name_conflict_across_kinds_raises():
    registry = MetricsRegistry()
    registry.counter("t_conflict", "help")
    with pytest.raises(ValueError):
        registry.gauge("t_conflict", "help")
    with pytest.raises(ValueError):
        registry.histogram("t_conflict", "help")


def test_same_name_same_kind_returns_same_family():
    registry = MetricsRegistry()
    assert registry.counter("t_same", "help") is registry.counter("t_same", "x")


def test_disabled_registry_records_nothing_but_still_scrapes():
    registry = MetricsRegistry()
    counter = registry.counter("t_disabled", "help")
    histogram = registry.histogram("t_disabled_h", "help")
    counter.inc()
    registry.set_enabled(False)
    counter.inc(100)
    histogram.observe(1.0)
    registry.set_enabled(True)
    counter.inc()
    assert counter.value() == 2
    assert histogram.count() == 0
    assert "t_disabled 2" in registry.render()


def test_render_is_valid_prometheus_text():
    registry = MetricsRegistry()
    registry.counter("t_fmt_counter", "a counter", ("kind",)).labels(
        'quo"te\\back'
    ).inc()
    registry.gauge("t_fmt_gauge", "a gauge").set(1.5)
    registry.histogram("t_fmt_hist", "a histogram").observe(0.002)
    text = registry.render()
    assert text.endswith("\n")
    for line in text.strip().split("\n"):
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert SAMPLE_LINE.match(line), f"bad exposition line: {line!r}"


def test_every_family_renders_help_and_type_headers():
    registry = MetricsRegistry()
    registry.counter("t_hdr_c", "counter help")
    registry.histogram("t_hdr_h", "hist help")
    text = registry.render()
    assert "# HELP t_hdr_c counter help" in text
    assert "# TYPE t_hdr_c counter" in text
    assert "# TYPE t_hdr_h histogram" in text


def test_default_registry_exposes_full_catalogue():
    import repro.telemetry.instruments  # noqa: F401  (registers the catalogue)

    text = render_metrics()
    for family in (
        "repro_queries_total",
        "repro_query_seconds",
        "repro_cursor_ops_total",
        "repro_cache_lookups_total",
        "repro_cache_evictions_total",
        "repro_wal_appends_total",
        "repro_wal_fsyncs_total",
        "repro_memtable_seals_total",
        "repro_compactions_total",
        "repro_scatter_tasks_total",
        "repro_spool_respills_total",
        "repro_http_requests_total",
        "repro_slow_queries_total",
    ):
        assert f"# TYPE {family}" in text, f"{family} missing from catalogue"


def test_default_buckets_are_sorted_and_distinct():
    assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


def test_counter_is_exact_under_thread_contention():
    registry = MetricsRegistry()
    counter = registry.counter("t_contended", "help", ("lane",))
    increments, threads = 5000, 8

    def hammer(lane: str) -> None:
        child = counter.labels(lane)
        for _ in range(increments):
            child.inc()

    workers = [
        threading.Thread(target=hammer, args=(str(lane % 2),))
        for lane in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    assert counter.value("0") == increments * threads / 2
    assert counter.value("1") == increments * threads / 2


def test_scraped_counter_is_monotonic_while_incrementing():
    registry = MetricsRegistry()
    counter = registry.counter("t_monotonic", "help")
    stop = threading.Event()
    violations: list[tuple[float, float]] = []

    def scrape() -> None:
        last = 0.0
        while not stop.is_set():
            current = counter.value()
            if current < last:
                violations.append((last, current))
            last = current

    def produce() -> None:
        for _ in range(20000):
            counter.inc()

    reader = threading.Thread(target=scrape)
    writers = [threading.Thread(target=produce) for _ in range(4)]
    reader.start()
    for writer in writers:
        writer.start()
    for writer in writers:
        writer.join()
    stop.set()
    reader.join()
    assert not violations, f"scrape went backwards: {violations[:3]}"
    assert counter.value() == 80000
