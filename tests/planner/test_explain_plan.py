"""EXPLAIN carries the physical plan: choices, provenance, est-vs-observed.

The acceptance contract for the planning layer's observability: an
``EXPLAIN ANALYZE`` run shows what the optimizer chose (join order, merge
strategy, access mode, bound strategy), where the plan came from
(``optimized`` / ``cached`` / ``static``), and -- per operator -- the cost
model's estimated op count next to the observed ``CursorStats`` count.
"""

from __future__ import annotations

import pytest

from repro.core.engine import FullTextEngine
from repro.corpus.collection import Collection
from repro.telemetry.explain import observed_ops, render_explain

QUERY = "'rare' AND 'common'"


@pytest.fixture(scope="module")
def skewed_collection() -> Collection:
    texts = []
    for position in range(200):
        words = []
        if position % 50 == 0:
            words.append("rare")
        if position % 10 != 0:
            words.append("common")
        words.extend(f"filler{position % 5}w{offset}" for offset in range(6))
        texts.append(" ".join(words))
    return Collection.from_texts(texts, name="explain-skew")


def make_engine(collection, **kwargs):
    defaults = dict(scoring="tfidf", access_mode="paper", optimizer="on")
    defaults.update(kwargs)
    return FullTextEngine.from_collection(collection, **defaults)


def test_explain_shows_plan_choices_and_provenance(skewed_collection):
    engine = make_engine(skewed_collection)
    try:
        results = engine.search(QUERY, explain=True)
        plan = results.metadata["explain"]["plan"]
        assert plan["provenance"] == "optimized"
        assert plan["optimizer"] == "on"
        assert plan["merge_strategy"] == "zigzag"  # df 4 vs ~180
        assert plan["join_order"] == ["rare", "common"]
        assert plan["access_mode"] == "fast"  # upgraded for the zig-zag
        assert set(plan["decides"]) >= {"merge_strategy", "join_order"}
        assert plan["estimated_cost"] > 0
    finally:
        engine.close()


def test_explain_operator_rows_pair_estimates_with_observations(
    skewed_collection,
):
    engine = make_engine(skewed_collection)
    try:
        results = engine.search(QUERY, explain=True)
        payload = results.metadata["explain"]
        rows = {row["token"]: row for row in payload["operators"]}
        for token in ("rare", "common"):
            row = rows[token]
            assert row["estimated_ops"] > 0
            assert row["planned_role"] in ("lead", "probe")
            # observed_ops is the recipe the feedback loop divides by the
            # estimate -- it must equal the row's own counts.
            assert row["observed_ops"] == observed_ops(row["counts"])
            assert row["observed_ops"] > 0
    finally:
        engine.close()


def test_repeated_explains_converge_to_cached_provenance(skewed_collection):
    """Feedback can re-plan while corrections settle, then the memo serves.

    The first run is always ``optimized``; the next few may re-optimize
    (each observation that moves a correction materially bumps the
    generation), but the EWMA converges, after which every run is a
    ``cached`` memo hit with the same choices.
    """
    engine = make_engine(skewed_collection)
    try:
        first = engine.search(QUERY, explain=True)
        assert first.metadata["explain"]["plan"]["provenance"] == "optimized"
        for _ in range(8):
            last = engine.search(QUERY, explain=True)
        plan = last.metadata["explain"]["plan"]
        assert plan["provenance"] == "cached"
        # Same choices either way -- a memo hit replays, never re-decides.
        assert plan["join_order"] == first.metadata["explain"]["plan"]["join_order"]
    finally:
        engine.close()


def test_static_mode_reports_static_provenance_and_auto_choices(
    skewed_collection,
):
    engine = make_engine(skewed_collection, optimizer="static")
    try:
        plan = engine.search(QUERY, explain=True).metadata["explain"]["plan"]
        assert plan["provenance"] == "static"
        assert plan["merge_strategy"] == "auto"
        assert plan["bound_strategy"] == "auto"
        assert "join_order" not in plan
    finally:
        engine.close()


def test_optimizer_off_omits_the_plan_section(skewed_collection):
    engine = make_engine(skewed_collection, optimizer="off")
    try:
        payload = engine.search(QUERY, explain=True).metadata["explain"]
        assert "plan" not in payload
    finally:
        engine.close()


def test_rendered_explain_includes_the_plan_lines(skewed_collection):
    engine = make_engine(skewed_collection)
    try:
        rendered = render_explain(engine.search(QUERY, explain=True).metadata["explain"])
        assert "provenance=optimized" in rendered
        assert "zigzag" in rendered
        assert "est=" in rendered and "obs=" in rendered
    finally:
        engine.close()


def test_results_carry_the_plan_payload(skewed_collection):
    engine = make_engine(skewed_collection)
    try:
        results = engine.search(QUERY)
        assert results.plan is not None
        assert results.plan["provenance"] == "optimized"
        assert results.top(3).plan == results.plan  # survives the cut
    finally:
        engine.close()


def test_sharded_explain_reports_the_shipped_plan(skewed_collection):
    engine = make_engine(skewed_collection, shards=2, cache_size=None)
    try:
        results = engine.search(QUERY, explain=True)
        plan = results.metadata["explain"]["plan"]
        assert plan["provenance"] == "optimized"
        assert plan["merge_strategy"] == "zigzag"
        assert results.plan["merge_strategy"] == "zigzag"
    finally:
        engine.close()
