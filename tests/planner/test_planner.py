"""QueryPlanner behaviour: plan contents, memoisation, feedback invalidation."""

from __future__ import annotations

from repro.core.query import parse_query
from repro.index.inverted_index import ANY_TOKEN
from repro.planner.optimizer import QueryPlanner
from repro.planner.physical import (
    BOUND_AUTO,
    BOUND_BOUNDED,
    BOUND_HEAP,
    MERGE_AUTO,
    MERGE_SEQUENTIAL,
    MERGE_ZIGZAG,
)


def parse(text: str):
    return parse_query(text).node


def make_planner(dfs: dict, node_count: int = 1000) -> QueryPlanner:
    return QueryPlanner(
        lambda token: node_count if token is None else dfs.get(token, 0)
    )


def plan(planner, text, *, optimizer="on", engine="bool", top_k=None,
         scored=False, access_mode="paper"):
    return planner.plan(
        parse(text),
        engine=engine,
        language_class="BOOL",
        optimizer=optimizer,
        access_mode=access_mode,
        top_k=top_k,
        scored=scored,
    )


# -------------------------------------------------------------- static plans
def test_static_mode_defers_every_choice_to_the_engine():
    planner = make_planner({"a": 10, "b": 1000})
    artifact = plan(planner, "'a' AND 'b'", optimizer="static")
    assert artifact.provenance == "static"
    assert artifact.merge_strategy == MERGE_AUTO
    assert artifact.bound_strategy == BOUND_AUTO
    assert artifact.join_order == ()
    assert planner.plans_built == 0  # static artifacts are not memoised work


# ----------------------------------------------------------- optimized plans
def test_skewed_conjunction_plans_a_zigzag_and_upgrades_access_mode():
    planner = make_planner({"rare": 10, "common": 1000})
    artifact = plan(planner, "'common' AND 'rare'")
    assert artifact.provenance == "optimized"
    assert artifact.merge_strategy == MERGE_ZIGZAG
    assert artifact.join_order == ("rare", "common")  # cheapest leads
    assert artifact.access_mode == "fast"  # zig-zag only exists on fast path
    assert "merge_strategy" in artifact.decides
    assert artifact.estimated_cost is not None


def test_balanced_conjunction_plans_a_sequential_merge():
    planner = make_planner({"a": 500, "b": 500})
    artifact = plan(planner, "'a' AND 'b'")
    assert artifact.merge_strategy == MERGE_SEQUENTIAL
    assert artifact.access_mode == "paper"  # no reason to leave paper mode


def test_any_leaf_enters_the_merge_under_its_cursor_name():
    planner = make_planner({"a": 10}, node_count=5000)
    artifact = plan(planner, "'a' AND ANY")
    assert ANY_TOKEN in artifact.join_order
    assert artifact.join_order[0] == "a"  # df 10 leads over df 5000


def test_order_for_maps_join_order_onto_engine_token_slots():
    planner = make_planner({"rare": 10, "common": 1000})
    artifact = plan(planner, "'common' AND 'rare'")
    assert artifact.order_for(["common", "rare"]) == [1, 0]
    # A token set the plan did not cover falls back to the builtin order.
    assert artifact.order_for(["common", "other"]) is None


# ------------------------------------------------------------------ memoising
def test_memo_hit_returns_the_same_choices_with_cached_provenance():
    planner = make_planner({"rare": 10, "common": 1000})
    first = plan(planner, "'rare' AND 'common'")
    second = plan(planner, "'rare' AND 'common'")
    assert first.provenance == "optimized"
    assert second.provenance == "cached"
    assert second.merge_strategy == first.merge_strategy
    assert second.join_order == first.join_order
    assert planner.plans_built == 1
    assert planner.memo_hits == 1


def test_commuted_queries_share_one_memo_entry():
    planner = make_planner({"rare": 10, "common": 1000})
    plan(planner, "'rare' AND 'common'")
    commuted = plan(planner, "'common' AND 'rare'")
    assert commuted.provenance == "cached"
    assert planner.plans_built == 1
    assert planner.memo_hits == 1


def test_generation_bump_invalidates_memoised_plans():
    planner = make_planner({"rare": 10, "common": 1000})
    first = plan(planner, "'rare' AND 'common'")
    planner.feedback.record_give_up("some other query")  # bumps generation
    replanned = plan(planner, "'rare' AND 'common'")
    assert replanned.provenance == "optimized"  # memo entry was stale
    assert replanned.feedback_generation > first.feedback_generation
    assert planner.plans_built == 2


# ------------------------------------------------------------------ feedback
def test_observed_ops_shift_the_join_order():
    # Model thinks 'a' is the cheaper list...
    planner = make_planner({"a": 100, "b": 150})
    first = plan(planner, "'a' AND 'b'")
    assert first.join_order[0] == "a"
    # ...but observation says cursors over 'a' cost ~8x the estimate.
    estimated = first.estimated_token_ops()
    planner.observe(first, {"a": estimated["a"] * 8.0, "b": estimated["b"]})
    replanned = plan(planner, "'a' AND 'b'")
    assert replanned.provenance == "optimized"  # generation moved
    assert replanned.join_order[0] == "b"


def test_observe_ignores_non_optimized_plans():
    planner = make_planner({"a": 100, "b": 150})
    artifact = plan(planner, "'a' AND 'b'", optimizer="static")
    planner.observe(artifact, {"a": 1e6, "b": 1e6})
    assert planner.feedback.summary()["tokens_corrected"] == 0


# ------------------------------------------------------------ bound strategy
def test_scored_top_k_starts_with_bound_pruning():
    planner = make_planner({"a": 100, "b": 150})
    artifact = plan(planner, "'a' AND 'b'", top_k=5, scored=True)
    assert artifact.bound_strategy == BOUND_BOUNDED


def test_a_recorded_give_up_switches_to_the_plain_heap():
    planner = make_planner({"a": 100, "b": 150})
    first = plan(planner, "'a' AND 'b'", top_k=5, scored=True)
    planner.record_give_up(first)
    replanned = plan(planner, "'b' AND 'a'", top_k=5, scored=True)
    assert replanned.bound_strategy == BOUND_HEAP  # canonical key matched
    assert replanned.give_up_after == 0


def test_unscored_or_unbounded_queries_leave_bounds_alone():
    planner = make_planner({"a": 100, "b": 150})
    assert plan(planner, "'a' AND 'b'").bound_strategy == BOUND_AUTO
    assert (
        plan(planner, "'a' AND 'b'", top_k=5, scored=False).bound_strategy
        == BOUND_AUTO
    )


# --------------------------------------------------------------------- stats
def test_summary_merges_planner_and_feedback_counters():
    planner = make_planner({"a": 100, "b": 150})
    plan(planner, "'a' AND 'b'")
    plan(planner, "'b' AND 'a'")
    summary = planner.summary()
    assert summary["plans_built"] == 1
    assert summary["memo_hits"] == 1
    assert "generation" in summary
