"""Runtime cost feedback: EWMA smoothing, clamping, generations, give-ups."""

from __future__ import annotations

import pytest

from repro.planner.feedback import (
    CORRECTION_CEILING,
    CORRECTION_FLOOR,
    EWMA_ALPHA,
    CostFeedback,
)


def test_unobserved_tokens_have_unit_correction():
    assert CostFeedback().correction("never-seen") == 1.0


def test_one_observation_moves_by_alpha():
    feedback = CostFeedback()
    feedback.observe("t", estimated_ops=100.0, observed_ops=200.0)
    # EWMA from 1.0 toward the observed ratio 2.0.
    assert feedback.correction("t") == pytest.approx(
        (1 - EWMA_ALPHA) * 1.0 + EWMA_ALPHA * 2.0
    )


def test_repeated_observations_converge_to_the_true_ratio():
    feedback = CostFeedback()
    for _ in range(50):
        feedback.observe("t", estimated_ops=100.0, observed_ops=300.0)
    assert feedback.correction("t") == pytest.approx(3.0, rel=1e-3)


def test_corrections_are_clamped_to_the_configured_band():
    feedback = CostFeedback()
    for _ in range(100):
        feedback.observe("hot", estimated_ops=1.0, observed_ops=1e9)
        feedback.observe("cold", estimated_ops=1e9, observed_ops=1.0)
    assert feedback.correction("hot") == pytest.approx(CORRECTION_CEILING)
    assert feedback.correction("hot") <= CORRECTION_CEILING
    assert feedback.correction("cold") == pytest.approx(CORRECTION_FLOOR)
    assert feedback.correction("cold") >= CORRECTION_FLOOR


def test_degenerate_observations_are_ignored():
    feedback = CostFeedback()
    feedback.observe("t", estimated_ops=0.0, observed_ops=50.0)
    feedback.observe("t", estimated_ops=-1.0, observed_ops=50.0)
    feedback.observe("t", estimated_ops=10.0, observed_ops=-5.0)
    assert feedback.correction("t") == 1.0
    assert feedback.generation == 0


def test_material_moves_bump_the_generation():
    feedback = CostFeedback()
    start = feedback.generation
    feedback.observe("t", estimated_ops=100.0, observed_ops=800.0)  # big move
    assert feedback.generation > start
    settled = feedback.generation
    # An observation matching the current correction is not material.
    current = feedback.correction("t")
    feedback.observe("t", estimated_ops=100.0, observed_ops=100.0 * current)
    assert feedback.generation == settled


def test_observe_many_pairs_estimates_with_observations():
    feedback = CostFeedback()
    feedback.observe_many(
        {"a": 100.0, "b": 100.0}, {"a": 200.0, "missing": 1.0}
    )
    assert feedback.correction("a") > 1.0
    assert feedback.correction("b") == 1.0  # no observation, untouched


def test_give_ups_are_remembered_once_and_bump_the_generation():
    feedback = CostFeedback()
    assert not feedback.gave_up("k")
    feedback.record_give_up("k")
    first = feedback.generation
    assert feedback.gave_up("k")
    feedback.record_give_up("k")  # idempotent: no second bump
    assert feedback.generation == first


def test_summary_counts():
    feedback = CostFeedback()
    feedback.observe("a", 10.0, 20.0)
    feedback.record_give_up("q")
    summary = feedback.summary()
    assert summary["tokens_corrected"] == 1
    assert summary["give_ups"] == 1
    assert summary["generation"] >= 1
