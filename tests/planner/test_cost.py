"""The cost model's arithmetic and its calibrated break-even point.

The load-bearing property is where zig-zag and sequential merges cross
over: the model must agree with measurement (and with the engines' static
``ZIGZAG_SELECTIVITY_RATIO == 6`` threshold it replaces) that a two-list
df ratio of 4 is a sequential merge and a ratio of 6 or more is a zig-zag.
"""

from __future__ import annotations

import pytest

from repro.engine.bool_engine import BoolEngine
from repro.planner.cost import (
    SEQ_UNIT,
    corrected_counts,
    merge_decision,
    seek_cost,
    sequential_cost,
    zigzag_cost,
)


# ------------------------------------------------------------------ formulas
def test_sequential_cost_sums_every_list():
    assert sequential_cost([100, 400]) == pytest.approx(SEQ_UNIT * 500)
    assert sequential_cost([]) == 0.0


def test_seek_cost_has_a_one_probe_floor():
    # Probing a list shorter than the lead still costs one probe per seek.
    assert seek_cost(100, 10) == pytest.approx(seek_cost(100, 10))
    assert seek_cost(100, 10) >= 100  # floor: one probe each
    assert seek_cost(0, 1000) == 0.0


def test_seek_cost_grows_logarithmically_with_the_gap():
    narrow = seek_cost(10, 100)
    wide = seek_cost(10, 10_000)
    assert wide > narrow
    assert wide < 4 * narrow  # log growth, not linear


def test_zigzag_cost_leads_with_the_rarest_list():
    # Order of the argument list must not matter: the model sorts.
    assert zigzag_cost([1000, 10]) == pytest.approx(zigzag_cost([10, 1000]))
    assert zigzag_cost([]) == 0.0


# ----------------------------------------------------------------- decisions
def test_single_list_is_always_sequential():
    strategy, chosen, rejected = merge_decision([500])
    assert strategy == "sequential"
    assert chosen == rejected == pytest.approx(500 * SEQ_UNIT)


def test_break_even_brackets_the_static_engine_threshold():
    """df ratio 4 -> sequential; df ratio >= 6 -> zig-zag.

    Measured on the synthetic corpora, ratio-4 zig-zags lose to the
    sequential merge and ratio-6 ones win -- which is also where the
    engines' static threshold sits, so the model reproduces the static
    behaviour where the static behaviour is right.
    """
    assert merge_decision([250.0, 1000.0])[0] == "sequential"  # ratio 4
    assert merge_decision([1000.0 / 6.0, 1000.0])[0] == "zigzag"  # ratio 6
    assert merge_decision([10.0, 1000.0])[0] == "zigzag"  # ratio 100
    assert BoolEngine.ZIGZAG_SELECTIVITY_RATIO == 6


def test_extreme_skew_prefers_zigzag_by_a_wide_margin():
    strategy, chosen, rejected = merge_decision([10.0, 100_000.0])
    assert strategy == "zigzag"
    assert rejected / chosen > 10


def test_equal_lists_prefer_sequential():
    strategy, _, _ = merge_decision([1000.0, 1000.0, 1000.0])
    assert strategy == "sequential"


# ---------------------------------------------------------------- correction
def test_corrected_counts_apply_per_token_multipliers():
    df = {"a": 100, "b": 400}.__getitem__
    correction = {"a": 2.0, "b": 0.5}.__getitem__
    assert corrected_counts(["a", "b"], df, correction) == [200.0, 200.0]


def test_corrections_scale_costs_but_cannot_flip_a_two_list_decision_alone():
    """A uniform correction multiplies both strategies' costs equally.

    This is why the break-even constant must be calibrated rather than
    learned: feedback shifts *levels*, the constant decides the *shape*.
    """
    base = [250.0, 1000.0]
    scaled = [count * 3.0 for count in base]
    assert merge_decision(base)[0] == merge_decision(scaled)[0]
