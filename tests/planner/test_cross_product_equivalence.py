"""The optimizer invariant, pinned across the whole configuration space.

Turning the optimizer on, off, or static must never change a returned byte:
node ids, scores and order are bit-identical under every combination of
query class, access mode, scoring model, shard count, index tier and
worker pool.  A hypothesis search samples the static-index cross-product
(engines are cached per configuration, so examples stay cheap); the
expensive corners -- live index tier, process worker pools -- are pinned by
deterministic parametrized tests below.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.workload import workload_queries
from repro.core.engine import FullTextEngine
from repro.corpus.synthetic import DEFAULT_QUERY_TOKENS

QUERIES = workload_queries(
    list(DEFAULT_QUERY_TOKENS), num_tokens=3, num_predicates=2
)

OPTIMIZERS = ["off", "static", "on"]
SERIES = sorted(QUERIES)
ACCESS_MODES = ["paper", "fast"]
SCORINGS = ["tfidf", "probabilistic"]
SHARD_COUNTS = [1, 4]
TOP_KS = [None, 5]


def ranking(results):
    return [(r.node_id, r.score) for r in results]


@pytest.fixture(scope="module")
def engines(small_synthetic):
    """Engine per sampled configuration, built lazily and closed at teardown."""
    built: dict[tuple, FullTextEngine] = {}

    def get(optimizer: str, access_mode: str, scoring: str, shards: int):
        key = (optimizer, access_mode, scoring, shards)
        if key not in built:
            built[key] = FullTextEngine.from_collection(
                small_synthetic,
                scoring=scoring,
                access_mode=access_mode,
                shards=shards,
                cache_size=None,  # every search exercises the planner
                optimizer=optimizer,
            )
        return built[key]

    yield get
    for engine in built.values():
        engine.close()


@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    optimizer=st.sampled_from(OPTIMIZERS),
    series=st.sampled_from(SERIES),
    access_mode=st.sampled_from(ACCESS_MODES),
    scoring=st.sampled_from(SCORINGS),
    shards=st.sampled_from(SHARD_COUNTS),
    top_k=st.sampled_from(TOP_KS),
)
def test_optimizer_never_changes_a_returned_byte(
    engines, optimizer, series, access_mode, scoring, shards, top_k
):
    query = QUERIES[series]
    # Reference: no planner, single shard, paper-faithful cursors -- the
    # seed configuration every optimization must reproduce exactly.
    reference = engines("off", "paper", scoring, 1).search(query, top_k=top_k)
    candidate = engines(optimizer, access_mode, scoring, shards).search(
        query, top_k=top_k
    )
    assert ranking(candidate) == ranking(reference)


# ------------------------------------------------------- expensive corners
@pytest.mark.parametrize("optimizer", OPTIMIZERS)
@pytest.mark.parametrize("series", SERIES)
def test_live_tier_matches_static_reference(small_synthetic, optimizer, series):
    static = FullTextEngine.from_collection(
        small_synthetic, scoring="tfidf", access_mode="fast", optimizer="off"
    )
    live = FullTextEngine.from_collection(
        small_synthetic,
        scoring="tfidf",
        access_mode="fast",
        live=True,
        optimizer=optimizer,
    )
    query = QUERIES[series]
    assert ranking(live.search(query)) == ranking(static.search(query))
    assert ranking(live.search(query, top_k=5)) == ranking(
        static.search(query, top_k=5)
    )
    static.close()
    live.close()


@pytest.mark.parametrize("optimizer", OPTIMIZERS)
def test_process_workers_match_thread_reference(small_synthetic, optimizer):
    thread = FullTextEngine.from_collection(
        small_synthetic,
        scoring="tfidf",
        access_mode="fast",
        shards=2,
        cache_size=None,
        optimizer="off",
    )
    process = FullTextEngine.from_collection(
        small_synthetic,
        scoring="tfidf",
        access_mode="fast",
        shards=2,
        cache_size=None,
        workers="process",
        optimizer=optimizer,
    )
    try:
        for query in QUERIES.values():
            assert ranking(process.search(query)) == ranking(
                thread.search(query)
            )
            assert ranking(process.search(query, top_k=5)) == ranking(
                thread.search(query, top_k=5)
            )
    finally:
        thread.close()
        process.close()
