"""The logical-plan IR: canonicalisation collapses commuted variants.

The planner memo and every result cache key on ``canonical_key``; these
tests pin what that key identifies (commuted/re-associated AND and OR
chains) and -- just as important -- what it must NOT identify (predicates,
quantifier structure, distinct token sets).
"""

from __future__ import annotations

from repro.core.query import parse_query
from repro.languages import ast
from repro.planner.ir import and_group, canonical_key, canonicalize


def parse(text: str) -> ast.QueryNode:
    return parse_query(text).node


# ----------------------------------------------------------- key collapsing
def test_commuted_and_shares_one_key():
    assert canonical_key(parse("'a' AND 'b'")) == canonical_key(parse("'b' AND 'a'"))


def test_reassociated_and_chain_shares_one_key():
    variants = [
        "'a' AND ('b' AND 'c')",
        "('a' AND 'b') AND 'c'",
        "('c' AND 'a') AND 'b'",
        "'c' AND 'b' AND 'a'",
    ]
    keys = {canonical_key(parse(text)) for text in variants}
    assert len(keys) == 1


def test_commuted_or_shares_one_key():
    assert canonical_key(parse("'x' OR 'y'")) == canonical_key(parse("'y' OR 'x'"))


def test_mixed_and_or_canonicalizes_each_chain():
    left = parse("('a' OR 'b') AND 'c'")
    right = parse("'c' AND ('b' OR 'a')")
    assert canonical_key(left) == canonical_key(right)


def test_negated_conjuncts_sort_after_positive_ones():
    assert canonical_key(parse("NOT 'a' AND 'b'")) == canonical_key(
        parse("'b' AND NOT 'a'")
    )
    canonical = canonicalize(parse("NOT 'a' AND 'b'"))
    assert isinstance(canonical, ast.AndQuery)
    assert isinstance(canonical.left, ast.TokenQuery)
    assert isinstance(canonical.right, ast.NotQuery)


# ------------------------------------------------------------ key separation
def test_and_and_or_do_not_collide():
    assert canonical_key(parse("'a' AND 'b'")) != canonical_key(parse("'a' OR 'b'"))


def test_different_token_sets_do_not_collide():
    assert canonical_key(parse("'a' AND 'b'")) != canonical_key(parse("'a' AND 'c'"))


def test_duplicate_operands_are_not_deduplicated():
    # 'a' AND 'a' and plain 'a' are result-equal, but the IR does not claim
    # idempotence -- only commutativity/associativity, which are what the
    # engines' merge algorithms are insensitive to.
    assert canonical_key(parse("'a' AND 'a'")) != canonical_key(parse("'a'"))


def test_predicate_argument_order_is_semantic():
    forward = parse(
        "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND ordered(p1, p2))"
    )
    reverse = parse(
        "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND ordered(p2, p1))"
    )
    assert canonical_key(forward) != canonical_key(reverse)


def test_quantifier_variables_are_not_alpha_renamed():
    one = parse("SOME p (p HAS 'a')")
    other = parse("SOME q (q HAS 'a')")
    assert canonical_key(one) != canonical_key(other)


# ------------------------------------------------------------ tree mechanics
def test_canonicalize_returns_a_new_tree_and_preserves_the_input():
    query = parse("'b' AND 'a'")
    before = query.to_text()
    canonical = canonicalize(query)
    assert query.to_text() == before  # input untouched
    assert canonical.to_text() != before  # operands were reordered
    assert canonical_key(canonical) == canonical_key(query)  # idempotent


def test_canonicalization_inside_quantifiers_and_not():
    outer = parse("NOT ('b' AND 'a')")
    assert canonical_key(outer) == canonical_key(parse("NOT ('a' AND 'b')"))
    some = parse("SOME p (p HAS 'a' AND 'y' AND 'x')")
    assert canonical_key(some) == canonical_key(
        parse("SOME p ('x' AND 'y' AND p HAS 'a')")
    )


# -------------------------------------------------------------- and_group()
def test_and_group_splits_tokens_any_and_extras():
    tokens, has_any, extras = and_group(
        canonicalize(parse("'a' AND ANY AND ('x' OR 'y') AND 'b'"))
    )
    assert sorted(tokens) == ["a", "b"]
    assert has_any is True
    assert extras == 1  # the OR subquery


def test_and_group_of_non_and_root_is_empty():
    assert and_group(parse("'a' OR 'b'")) == ([], False, 0)
    assert and_group(parse("'a'")) == ([], False, 0)
