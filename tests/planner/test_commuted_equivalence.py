"""Commuted queries: bit-identical results and shared cache entries.

The IR's promise (``'a' AND 'b'`` is the same logical plan as
``'b' AND 'a'``) must hold at every layer that keys on it: the returned
rankings are byte-identical, the cluster's result cache serves the second
spelling from the first spelling's entry, and the planner memo builds one
plan for the whole commutation class.
"""

from __future__ import annotations

import pytest

from repro.core.engine import FullTextEngine

BASE = "'alpha' AND 'beta' AND 'gamma'"
COMMUTED = [
    "'beta' AND 'alpha' AND 'gamma'",
    "'gamma' AND ('beta' AND 'alpha')",
    "('alpha' AND 'gamma') AND 'beta'",
]


def ranking(results):
    return [(r.node_id, r.score) for r in results]


@pytest.mark.parametrize("optimizer", ["off", "static", "on"])
def test_commuted_queries_return_bit_identical_rankings(
    small_synthetic, optimizer
):
    engine = FullTextEngine.from_collection(
        small_synthetic, scoring="tfidf", access_mode="fast", optimizer=optimizer
    )
    reference = ranking(engine.search(BASE))
    assert reference  # the planted tokens co-occur
    for variant in COMMUTED:
        assert ranking(engine.search(variant)) == reference
    engine.close()


@pytest.mark.parametrize("optimizer", ["off", "static", "on"])
def test_commuted_queries_share_one_result_cache_entry(
    small_synthetic, optimizer
):
    engine = FullTextEngine.from_collection(
        small_synthetic,
        scoring="tfidf",
        access_mode="fast",
        shards=2,
        cache_size=64,
        optimizer=optimizer,
    )
    reference = ranking(engine.search(BASE))
    for variant in COMMUTED:
        assert ranking(engine.search(variant)) == reference
    stats = engine.cache_stats()
    # One miss fills the entry; every commuted spelling after it is a hit.
    assert stats["misses"] == 1
    assert stats["hits"] == len(COMMUTED)
    assert stats["hit_rate"] == pytest.approx(
        len(COMMUTED) / (len(COMMUTED) + 1)
    )
    engine.close()


def test_commuted_queries_share_one_planner_memo_entry(small_synthetic):
    engine = FullTextEngine.from_collection(
        small_synthetic, scoring="tfidf", access_mode="fast", optimizer="on"
    )
    engine.search(BASE)
    for variant in COMMUTED:
        engine.search(variant)
    summary = engine.optimizer_stats()
    assert summary["mode"] == "on"
    assert summary["plans_built"] == 1
    assert summary["memo_hits"] == len(COMMUTED)
    engine.close()


def test_distinct_queries_do_not_collide_in_the_cache(small_synthetic):
    engine = FullTextEngine.from_collection(
        small_synthetic,
        scoring="tfidf",
        access_mode="fast",
        shards=2,
        cache_size=64,
        optimizer="on",
    )
    engine.search("'alpha' AND 'beta'")
    engine.search("'alpha' AND 'gamma'")  # different token set: new entry
    engine.search("'alpha' OR 'beta'")  # different operator: new entry
    stats = engine.cache_stats()
    assert stats["misses"] == 3
    assert stats["hits"] == 0
    engine.close()
