"""Property-based tests for the formal model (random calculus expressions).

The strategies build random *closed* calculus queries over a tiny token
universe and random small collections, then check:

* the FTC -> FTA translation preserves semantics (Theorem 1, Lemma 2);
* the FTA -> FTC back-translation preserves semantics (Lemma 1);
* the FTC -> COMP surface translation preserves semantics (Theorem 6),
  including a parser round-trip through the COMP concrete syntax;
* negation normal form and universal-quantifier elimination preserve
  semantics;
* the Theorem 4 BOOL construction agrees with the calculus on predicate-free
  queries over the finite vocabulary.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.corpus import Collection, ContextNode
from repro.engine.bool_engine import BoolEngine
from repro.engine.naive_engine import NaiveCompEngine
from repro.index import InvertedIndex
from repro.languages.comp_lang import calculus_to_comp, parse_comp
from repro.model import calculus as c
from repro.model.algebra import AlgebraEvaluator
from repro.model.calculus import CalculusEvaluator, CalculusQuery
from repro.model.normalize import calculus_to_bool, eliminate_forall, to_nnf
from repro.model.translation import algebra_query_to_calculus, calculus_query_to_algebra

TOKENS = ["a", "b", "c"]
VARIABLES = ["v1", "v2", "v3"]

documents = st.lists(st.sampled_from(TOKENS), min_size=0, max_size=8)


@st.composite
def collections(draw) -> Collection:
    docs = draw(st.lists(documents, min_size=1, max_size=5))
    return Collection.from_nodes(
        [
            ContextNode.from_tokens(idx, tokens, sentence_length=3, paragraph_length=4)
            for idx, tokens in enumerate(docs)
        ]
    )


@st.composite
def scope_expressions(draw, var: str, depth: int) -> c.CalculusExpr:
    """Boolean combinations of atoms over a single bound variable."""
    if depth == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return c.HasToken(var, draw(st.sampled_from(TOKENS)))
        if choice == 1:
            return c.HasPos(var)
        return c.Not(c.HasToken(var, draw(st.sampled_from(TOKENS))))
    choice = draw(st.integers(0, 2))
    left = draw(scope_expressions(var, depth - 1))
    right = draw(scope_expressions(var, depth - 1))
    if choice == 0:
        return c.And(left, right)
    if choice == 1:
        return c.Or(left, right)
    return c.Not(left)


@st.composite
def predicate_free_queries(draw, depth: int = 2) -> CalculusQuery:
    """Closed, predicate-free calculus queries (the Theorem 4 fragment)."""

    def closed(level: int) -> st.SearchStrategy[c.CalculusExpr]:
        if level == 0:
            return quantified_block()
        return st.one_of(
            quantified_block(),
            st.tuples(closed(level - 1), closed(level - 1)).map(
                lambda pair: c.And(*pair)
            ),
            st.tuples(closed(level - 1), closed(level - 1)).map(
                lambda pair: c.Or(*pair)
            ),
            closed(level - 1).map(c.Not),
        )

    def quantified_block() -> st.SearchStrategy[c.CalculusExpr]:
        @st.composite
        def build(inner_draw):
            var = inner_draw(st.sampled_from(VARIABLES))
            scope = inner_draw(scope_expressions(var, depth=1))
            quantifier = inner_draw(st.sampled_from([c.Exists, c.Forall]))
            return quantifier(var, scope)

        return build()

    return CalculusQuery(draw(closed(depth)))


@st.composite
def predicate_queries(draw) -> CalculusQuery:
    """Closed queries with two quantified variables and a position predicate."""
    first_token = draw(st.sampled_from(TOKENS))
    second_token = draw(st.sampled_from(TOKENS))
    predicate = draw(
        st.sampled_from(
            [
                c.PredicateApplication("distance", ("x", "y"), (draw(st.integers(0, 3)),)),
                c.PredicateApplication("ordered", ("x", "y")),
                c.PredicateApplication("samepara", ("x", "y")),
                c.PredicateApplication("diffpos", ("x", "y")),
            ]
        )
    )
    body = c.And(c.HasToken("x", first_token), c.And(c.HasToken("y", second_token), predicate))
    if draw(st.booleans()):
        body = c.And(
            c.HasToken("x", first_token),
            c.And(c.HasToken("y", second_token), c.Not(predicate)),
        )
    return CalculusQuery(c.Exists("x", c.Exists("y", body)))


ALL_QUERIES = st.one_of(predicate_free_queries(), predicate_queries())


@settings(max_examples=50, deadline=None)
@given(collections(), ALL_QUERIES)
def test_calculus_to_algebra_translation_preserves_semantics(collection, query):
    reference = CalculusEvaluator().evaluate_query(query, collection)
    algebra_query = calculus_query_to_algebra(query)
    assert AlgebraEvaluator(collection).evaluate_query(algebra_query) == reference


@settings(max_examples=30, deadline=None)
@given(collections(), ALL_QUERIES)
def test_algebra_back_translation_preserves_semantics(collection, query):
    reference = CalculusEvaluator().evaluate_query(query, collection)
    algebra_query = calculus_query_to_algebra(query)
    back = algebra_query_to_calculus(algebra_query)
    assert CalculusEvaluator().evaluate_query(back, collection) == reference


@settings(max_examples=50, deadline=None)
@given(collections(), ALL_QUERIES)
def test_theorem6_comp_translation_preserves_semantics(collection, query):
    reference = CalculusEvaluator().evaluate_query(query, collection)
    comp_query = calculus_to_comp(query)
    engine = NaiveCompEngine(InvertedIndex(collection))
    assert engine.evaluate(comp_query) == reference
    # Round-trip through the concrete COMP syntax.
    reparsed = parse_comp(comp_query.to_text())
    assert engine.evaluate(reparsed) == reference


@settings(max_examples=50, deadline=None)
@given(collections(), ALL_QUERIES)
def test_normal_forms_preserve_semantics(collection, query):
    evaluator = CalculusEvaluator()
    reference = evaluator.evaluate_query(query, collection)
    nnf = CalculusQuery(to_nnf(query.expr))
    no_forall = CalculusQuery(eliminate_forall(query.expr))
    assert evaluator.evaluate_query(nnf, collection) == reference
    assert evaluator.evaluate_query(no_forall, collection) == reference


@settings(max_examples=50, deadline=None)
@given(collections(), predicate_free_queries())
def test_theorem4_bool_construction_agrees_with_the_calculus(collection, query):
    reference = CalculusEvaluator().evaluate_query(query, collection)
    bool_query = calculus_to_bool(query, TOKENS)
    engine = BoolEngine(InvertedIndex(collection))
    assert engine.evaluate(bool_query) == reference
