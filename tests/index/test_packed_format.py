"""Tests for the packed v4 segment format: round-trips and corruption.

Satellite contract of the mmap-scatter PR: the packed encoder/decoder
round-trips arbitrary collections losslessly (property-tested), wide node
ids widen the columns instead of overflowing, truncated or bit-flipped
files are rejected with errors naming the offending path, and the v2/v3
loaders keep working untouched.
"""

from __future__ import annotations

import json
import struct
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus import Collection, ContextNode
from repro.exceptions import IndexError_, StorageError
from repro.index import InvertedIndex, load_collection, save_collection
from repro.index.packed import (
    PACKED_SEGMENT_VERSION,
    SKIP_BLOCK,
    PackedPostingList,
    build_packed_segment,
    is_packed_segment,
    node_from_record,
    node_to_record,
    open_packed_segment,
    write_packed_segment,
)
from repro.index.postings import PostingList
from repro.index.storage import load_segment, save_segment
from repro.model.positions import Position


def _lists_of(index: InvertedIndex) -> dict[str, PostingList]:
    return {pl.token: pl for pl in index.posting_lists()}


def _docs_of(index: InvertedIndex) -> dict[int, ContextNode]:
    return {node.node_id: node for node in index.collection}


def _write(tmp_path: Path, collection: Collection, **kwargs) -> Path:
    index = InvertedIndex(collection)
    path = tmp_path / "segment.seg"
    write_packed_segment(
        path, _docs_of(index), _lists_of(index), index.any_list(), **kwargs
    )
    return path


def _assert_lists_equal(packed: PostingList, reference: PostingList) -> None:
    assert packed.node_ids() == reference.node_ids()
    for index in range(len(reference)):
        assert packed.positions_at(index) == reference.positions_at(index)


@pytest.fixture
def collection() -> Collection:
    return Collection.from_texts(
        [
            "usability testing of software. a second sentence",
            "software task completion\n\nsecond paragraph here",
            "task analysis for usability engineering",
            "efficient software for task completion",
        ],
        name="packed-format",
    )


# --------------------------------------------------------------- round trips
def test_round_trip_preserves_lists_and_documents(tmp_path, collection):
    index = InvertedIndex(collection)
    path = _write(tmp_path, collection, generation=7, name="packed-format")
    assert is_packed_segment(path)
    with open_packed_segment(path, verify=True) as reader:
        assert reader.generation == 7
        assert reader.name == "packed-format"
        assert reader.statistics == {
            "nodes": len(collection),
            "tokens": sum(len(node) for node in collection),
        }
        assert reader.tokens() == index.tokens()
        for token in index.tokens():
            _assert_lists_equal(reader.posting_list(token), index.posting_list(token))
        _assert_lists_equal(reader.any_list(), index.any_list())
        assert reader.doc_ids() == collection.node_ids()
        for node in collection:
            restored = reader.document(node.node_id)
            assert restored.occurrences == node.occurrences
            assert restored.metadata == node.metadata


def test_posting_lists_validate_and_report_stats(tmp_path, collection):
    index = InvertedIndex(collection)
    path = _write(tmp_path, collection)
    with open_packed_segment(path) as reader:
        for token in reader.tokens():
            packed = reader.posting_list(token)
            packed.validate()
            reference = index.posting_list(token)
            assert packed.document_frequency() == reference.document_frequency()
            assert packed.total_positions() == reference.total_positions()


def test_missing_token_and_unknown_document(tmp_path, collection):
    path = _write(tmp_path, collection)
    with open_packed_segment(path) as reader:
        assert reader.posting_list("nonexistent") is None
        with pytest.raises(KeyError):
            reader.document(999)


def test_packed_lists_are_immutable(tmp_path, collection):
    path = _write(tmp_path, collection)
    with open_packed_segment(path) as reader:
        packed = reader.posting_list(reader.tokens()[0])
        with pytest.raises(IndexError_):
            packed.add_occurrences(99, [Position(0, 0, 0)])
        with pytest.raises(IndexError_):
            packed.append(None)


def test_empty_segment_round_trips(tmp_path):
    path = tmp_path / "empty.seg"
    write_packed_segment(path, {}, {}, None)
    with open_packed_segment(path, verify=True) as reader:
        assert len(reader) == 0
        assert reader.tokens() == []
        assert reader.doc_ids() == []
        assert len(reader.any_list()) == 0


def test_wide_node_ids_use_q_columns(tmp_path):
    big_id = 2**40  # larger than any u32
    node = ContextNode.from_tokens(big_id, ["alpha", "beta", "alpha"])
    posting = PostingList("alpha")
    posting.add_occurrences(big_id, [p for p in node.positions()][:2])
    path = tmp_path / "wide.seg"
    write_packed_segment(path, {big_id: node}, {"alpha": posting}, None)
    with open_packed_segment(path, verify=True) as reader:
        restored = reader.posting_list("alpha")
        assert restored.node_ids() == [big_id]
        assert reader.doc_ids() == [big_id]
        assert reader.document(big_id).occurrences == node.occurrences


# ------------------------------------------------------ seek_index behaviour
def test_seek_index_matches_in_memory_probe_for_probe():
    node_ids = list(range(0, 3 * SKIP_BLOCK * 7, 7))  # several skip blocks
    reference = PostingList("t")
    for node_id in node_ids:
        reference.add_occurrences(node_id, [Position(0, 0, 0)])
    blob = build_packed_segment({}, {"t": reference}, None)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "seek.seg"
        path.write_bytes(blob)
        with open_packed_segment(path) as reader:
            packed = reader.posting_list("t")
            assert isinstance(packed, PackedPostingList)
            length = len(node_ids)
            targets = [0, 1, 6, 7, 8, 350, 351, 352, 7 * SKIP_BLOCK,
                       7 * SKIP_BLOCK + 1, node_ids[-1], node_ids[-1] + 1]
            starts = [0, 1, 5, SKIP_BLOCK - 1, SKIP_BLOCK, length - 1, length]
            for start in starts:
                for target in targets:
                    assert packed.seek_index(start, target) == reference.seek_index(
                        start, target
                    ), (start, target)
                    stop = length // 2
                    assert packed.seek_index(
                        start, target, stop
                    ) == reference.seek_index(start, target, stop), (start, target)


# ------------------------------------------------------------ property tests
TOKENS = ["a", "b", "c", "d"]
documents = st.lists(st.sampled_from(TOKENS), min_size=0, max_size=12)


@st.composite
def collections(draw) -> Collection:
    docs = draw(st.lists(documents, min_size=1, max_size=6))
    nodes = [
        ContextNode.from_tokens(idx, tokens, sentence_length=3, paragraph_length=5)
        for idx, tokens in enumerate(docs)
    ]
    return Collection.from_nodes(nodes)


@settings(max_examples=40, deadline=None)
@given(collection=collections())
def test_property_packed_round_trip(collection):
    index = InvertedIndex(collection)
    blob = build_packed_segment(
        _docs_of(index), _lists_of(index), index.any_list(), generation=3
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "prop.seg"
        path.write_bytes(blob)
        with open_packed_segment(path, verify=True) as reader:
            assert reader.tokens() == index.tokens()
            for token in index.tokens():
                _assert_lists_equal(
                    reader.posting_list(token), index.posting_list(token)
                )
            _assert_lists_equal(reader.any_list(), index.any_list())
            assert [node.occurrences for node in reader.documents()] == [
                node.occurrences for node in index.collection
            ]


@settings(max_examples=40, deadline=None)
@given(tokens=st.lists(st.sampled_from(TOKENS), min_size=1, max_size=20))
def test_property_node_record_round_trip(tokens):
    node = ContextNode.from_tokens(5, tokens, sentence_length=2, paragraph_length=4)
    restored = node_from_record(json.loads(json.dumps(node_to_record(node))))
    assert restored.node_id == node.node_id
    assert restored.occurrences == node.occurrences
    assert restored.metadata == node.metadata


# ---------------------------------------------------------------- corruption
def test_truncated_file_is_rejected_with_path(tmp_path, collection):
    path = _write(tmp_path, collection)
    data = path.read_bytes()
    path.write_bytes(data[:-10])
    with pytest.raises(StorageError, match="truncated"):
        open_packed_segment(path)
    with pytest.raises(StorageError, match=str(path)):
        open_packed_segment(path)


def test_truncated_header_is_rejected(tmp_path, collection):
    path = _write(tmp_path, collection)
    path.write_bytes(path.read_bytes()[:12])
    with pytest.raises(StorageError, match="truncated"):
        open_packed_segment(path)


def test_bit_flip_is_caught_by_verify(tmp_path, collection):
    path = _write(tmp_path, collection)
    data = bytearray(path.read_bytes())
    data[-5] ^= 0xFF  # flip a payload byte, keeping the length intact
    path.write_bytes(bytes(data))
    open_packed_segment(path).close()  # structural checks alone still pass
    with pytest.raises(StorageError, match="checksum mismatch"):
        open_packed_segment(path, verify=True)


def test_future_version_is_rejected_with_version(tmp_path, collection):
    path = _write(tmp_path, collection)
    data = bytearray(path.read_bytes())
    assert bytes(data[:8]) == b"RPSEGv04"
    data[6:8] = b"99"
    path.write_bytes(bytes(data))
    with pytest.raises(
        StorageError, match="unsupported segment format version 99"
    ):
        open_packed_segment(path)


def test_non_packed_file_is_rejected(tmp_path):
    path = tmp_path / "noise.seg"
    path.write_bytes(b"definitely not a segment")
    assert not is_packed_segment(path)
    with pytest.raises(StorageError, match="not a packed repro segment"):
        open_packed_segment(path)


def test_corrupt_header_json_is_rejected(tmp_path, collection):
    path = _write(tmp_path, collection)
    data = bytearray(path.read_bytes())
    header_len = struct.unpack("<Q", bytes(data[8:16]))[0]
    for i in range(16, 16 + header_len):
        data[i] = 0xFF
    path.write_bytes(bytes(data))
    with pytest.raises(StorageError, match="corrupt segment header"):
        open_packed_segment(path)


# ------------------------------------------------------- storage integration
def test_save_segment_v4_round_trips_through_load_segment(tmp_path, collection):
    path = tmp_path / "v4.seg"
    nodes = list(collection)
    save_segment(nodes, path, generation=5, version=PACKED_SEGMENT_VERSION)
    assert is_packed_segment(path)
    restored, generation = load_segment(path)
    assert generation == 5
    assert [node.occurrences for node in restored] == [
        node.occurrences for node in nodes
    ]


def test_save_segment_v3_still_loads(tmp_path, collection):
    path = tmp_path / "v3.json.gz"
    nodes = list(collection)
    save_segment(nodes, path, generation=2, version=3)
    assert not is_packed_segment(path)
    restored, generation = load_segment(path)
    assert generation == 2
    assert [node.occurrences for node in restored] == [
        node.occurrences for node in nodes
    ]


def test_save_segment_refuses_downgrade(tmp_path, collection):
    with pytest.raises(StorageError, match="refusing to downgrade"):
        save_segment(list(collection), tmp_path / "old.json", generation=0, version=1)


def test_load_collection_error_names_path_and_version(tmp_path):
    path = tmp_path / "future.json"
    path.write_text(
        json.dumps({"format": "repro-collection", "version": 99, "nodes": []}),
        encoding="utf-8",
    )
    with pytest.raises(StorageError) as excinfo:
        load_collection(path)
    assert str(path) in str(excinfo.value)
    assert "99" in str(excinfo.value)


def test_load_segment_error_names_path_and_version(tmp_path, collection):
    path = tmp_path / "future-seg.json"
    path.write_text(
        json.dumps(
            {
                "format": "repro-segment",
                "version": 77,
                "generation": 1,
                "nodes": [],
                "statistics": {"nodes": 0, "tokens": 0},
            }
        ),
        encoding="utf-8",
    )
    with pytest.raises(StorageError) as excinfo:
        load_segment(path)
    assert str(path) in str(excinfo.value)
    assert "77" in str(excinfo.value)


def test_v2_collection_files_keep_loading(tmp_path, collection):
    path = tmp_path / "c.json.gz"
    save_collection(collection, path)
    restored = load_collection(path)
    assert restored.node_ids() == collection.node_ids()
