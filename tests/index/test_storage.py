"""Tests for on-disk persistence of collections and indexes."""

from __future__ import annotations

import json

import pytest

from repro.corpus import Collection
from repro.exceptions import StorageError
from repro.index import InvertedIndex, load_collection, load_index, save_collection, save_index


@pytest.fixture
def collection() -> Collection:
    return Collection.from_texts(
        ["usability of software. second sentence", "software\n\nnew paragraph"],
        name="persisted",
    )


def test_collection_round_trip(tmp_path, collection):
    path = tmp_path / "collection.json"
    save_collection(collection, path)
    loaded = load_collection(path)
    assert loaded.name == "persisted"
    assert loaded.node_ids() == collection.node_ids()
    for nid in collection.node_ids():
        original, restored = collection.get(nid), loaded.get(nid)
        assert original.tokens == restored.tokens
        assert [p.sentence for p in original.positions()] == [
            p.sentence for p in restored.positions()
        ]
        assert [p.paragraph for p in original.positions()] == [
            p.paragraph for p in restored.positions()
        ]


def test_gzip_round_trip(tmp_path, collection):
    path = tmp_path / "collection.json.gz"
    save_collection(collection, path)
    assert load_collection(path).node_ids() == collection.node_ids()


def test_index_round_trip_produces_identical_postings(tmp_path, collection):
    path = tmp_path / "index.json"
    original = InvertedIndex(collection)
    save_index(original, path)
    restored = load_index(path)
    assert restored.tokens() == original.tokens()
    for token in original.tokens():
        assert [
            (e.node_id, e.position_offsets()) for e in restored.posting_list(token)
        ] == [(e.node_id, e.position_offsets()) for e in original.posting_list(token)]


def test_load_rejects_non_json(tmp_path):
    path = tmp_path / "garbage.json"
    path.write_text("not json at all", encoding="utf-8")
    with pytest.raises(StorageError):
        load_collection(path)


def test_load_rejects_wrong_format(tmp_path):
    path = tmp_path / "wrong.json"
    path.write_text(json.dumps({"format": "something-else"}), encoding="utf-8")
    with pytest.raises(StorageError):
        load_collection(path)


def test_load_rejects_unknown_version(tmp_path):
    path = tmp_path / "future.json"
    path.write_text(
        json.dumps({"format": "repro-collection", "version": 999, "nodes": []}),
        encoding="utf-8",
    )
    with pytest.raises(StorageError):
        load_collection(path)


def test_load_rejects_malformed_node_records(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text(
        json.dumps(
            {
                "format": "repro-collection",
                "version": 1,
                "nodes": [{"id": 0}],
            }
        ),
        encoding="utf-8",
    )
    with pytest.raises(StorageError):
        load_collection(path)


def test_load_missing_file(tmp_path):
    with pytest.raises(StorageError):
        load_collection(tmp_path / "missing.json")


def test_statistics_are_persisted_and_restored(tmp_path, collection):
    path = tmp_path / "stats.json"
    save_collection(collection, path)
    document = json.loads(path.read_text(encoding="utf-8"))
    assert document["version"] == 2
    assert document["statistics"] == collection.describe()
    assert load_collection(path).describe() == collection.describe()


def test_load_rejects_statistics_mismatch(tmp_path, collection):
    path = tmp_path / "tampered.json"
    save_collection(collection, path)
    document = json.loads(path.read_text(encoding="utf-8"))
    # Drop a node record but keep the stats block: truncation must be caught.
    document["nodes"] = document["nodes"][:-1]
    path.write_text(json.dumps(document), encoding="utf-8")
    with pytest.raises(StorageError, match="statistics do not match"):
        load_collection(path)


def test_version1_files_without_statistics_still_load(tmp_path, collection):
    path = tmp_path / "v1.json"
    save_collection(collection, path)
    document = json.loads(path.read_text(encoding="utf-8"))
    document["version"] = 1
    del document["statistics"]
    path.write_text(json.dumps(document), encoding="utf-8")
    assert load_collection(path).node_ids() == collection.node_ids()


def test_compresslevel_passthrough(tmp_path):
    big = Collection.from_texts(
        ["repeated tokens " * 200 for _ in range(20)], name="compressible"
    )
    fast_path = tmp_path / "fast.json.gz"
    small_path = tmp_path / "small.json.gz"
    save_collection(big, fast_path, compresslevel=1)
    save_collection(big, small_path, compresslevel=9)
    assert small_path.stat().st_size <= fast_path.stat().st_size
    assert load_collection(fast_path).node_ids() == big.node_ids()
    assert load_collection(small_path).node_ids() == big.node_ids()


def test_save_index_compresslevel_passthrough(tmp_path, collection):
    path = tmp_path / "index.json.gz"
    save_index(InvertedIndex(collection), path, compresslevel=1)
    assert load_index(path).tokens() == InvertedIndex(collection).tokens()


def test_save_rejects_bad_compresslevel(tmp_path, collection):
    with pytest.raises(StorageError):
        save_collection(collection, tmp_path / "bad.json.gz", compresslevel=-1)
    with pytest.raises(StorageError):
        save_collection(collection, tmp_path / "bad.json.gz", compresslevel=10)
    # level 0 (store) is legal gzip, and non-.gz paths ignore the level
    save_collection(collection, tmp_path / "stored.json.gz", compresslevel=0)
    assert load_collection(tmp_path / "stored.json.gz").node_ids() == collection.node_ids()
    save_collection(collection, tmp_path / "plain.json", compresslevel=10)
