"""Tests for on-disk persistence of collections and indexes."""

from __future__ import annotations

import json

import pytest

from repro.corpus import Collection
from repro.exceptions import StorageError
from repro.index import InvertedIndex, load_collection, load_index, save_collection, save_index


@pytest.fixture
def collection() -> Collection:
    return Collection.from_texts(
        ["usability of software. second sentence", "software\n\nnew paragraph"],
        name="persisted",
    )


def test_collection_round_trip(tmp_path, collection):
    path = tmp_path / "collection.json"
    save_collection(collection, path)
    loaded = load_collection(path)
    assert loaded.name == "persisted"
    assert loaded.node_ids() == collection.node_ids()
    for nid in collection.node_ids():
        original, restored = collection.get(nid), loaded.get(nid)
        assert original.tokens == restored.tokens
        assert [p.sentence for p in original.positions()] == [
            p.sentence for p in restored.positions()
        ]
        assert [p.paragraph for p in original.positions()] == [
            p.paragraph for p in restored.positions()
        ]


def test_gzip_round_trip(tmp_path, collection):
    path = tmp_path / "collection.json.gz"
    save_collection(collection, path)
    assert load_collection(path).node_ids() == collection.node_ids()


def test_index_round_trip_produces_identical_postings(tmp_path, collection):
    path = tmp_path / "index.json"
    original = InvertedIndex(collection)
    save_index(original, path)
    restored = load_index(path)
    assert restored.tokens() == original.tokens()
    for token in original.tokens():
        assert [
            (e.node_id, e.position_offsets()) for e in restored.posting_list(token)
        ] == [(e.node_id, e.position_offsets()) for e in original.posting_list(token)]


def test_load_rejects_non_json(tmp_path):
    path = tmp_path / "garbage.json"
    path.write_text("not json at all", encoding="utf-8")
    with pytest.raises(StorageError):
        load_collection(path)


def test_load_rejects_wrong_format(tmp_path):
    path = tmp_path / "wrong.json"
    path.write_text(json.dumps({"format": "something-else"}), encoding="utf-8")
    with pytest.raises(StorageError):
        load_collection(path)


def test_load_rejects_unknown_version(tmp_path):
    path = tmp_path / "future.json"
    path.write_text(
        json.dumps({"format": "repro-collection", "version": 999, "nodes": []}),
        encoding="utf-8",
    )
    with pytest.raises(StorageError):
        load_collection(path)


def test_load_rejects_malformed_node_records(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text(
        json.dumps(
            {
                "format": "repro-collection",
                "version": 1,
                "nodes": [{"id": 0}],
            }
        ),
        encoding="utf-8",
    )
    with pytest.raises(StorageError):
        load_collection(path)


def test_load_missing_file(tmp_path):
    with pytest.raises(StorageError):
        load_collection(tmp_path / "missing.json")
