"""Tests for corpus statistics: IDF, norms, complexity parameters."""

from __future__ import annotations

import math

import pytest

from repro.corpus import Collection
from repro.index import InvertedIndex


@pytest.fixture
def index() -> InvertedIndex:
    return InvertedIndex(
        Collection.from_texts(
            [
                "usability of software software",
                "software testing",
                "databases",
                "usability evaluation of databases",
            ]
        )
    )


def test_node_count(index):
    assert index.statistics.node_count == 4


def test_document_frequency(index):
    stats = index.statistics
    assert stats.document_frequency("software") == 2
    assert stats.document_frequency("usability") == 2
    assert stats.document_frequency("databases") == 2
    assert stats.document_frequency("missing") == 0


def test_idf_formula_matches_paper(index):
    stats = index.statistics
    assert stats.idf("software") == pytest.approx(math.log(1 + 4 / 2))
    assert stats.idf("testing") == pytest.approx(math.log(1 + 4 / 1))


def test_idf_of_missing_token_is_finite(index):
    stats = index.statistics
    assert stats.idf("missing") == pytest.approx(math.log(1 + 4 / 1))


def test_unique_token_count_and_node_length(index):
    stats = index.statistics
    assert stats.node_length(0) == 4
    assert stats.unique_token_count(0) == 3  # usability, of, software
    assert stats.node_length(42) == 0


def test_node_l2_norm_is_positive_and_matches_manual_computation(index):
    stats = index.statistics
    norm = stats.node_l2_norm(1)  # "software testing"
    tf = 1 / 2
    expected = math.sqrt(
        (tf * stats.idf("software")) ** 2 + (tf * stats.idf("testing")) ** 2
    )
    assert norm == pytest.approx(expected)


def test_query_l2_norm(index):
    stats = index.statistics
    weights = {"software": 1.0, "testing": 2.0}
    expected = math.sqrt(
        (1.0 * stats.idf("software")) ** 2 + (2.0 * stats.idf("testing")) ** 2
    )
    assert stats.query_l2_norm(weights) == pytest.approx(expected)
    assert stats.query_l2_norm({}) == 1.0


def test_complexity_parameters(index):
    params = index.statistics.complexity_parameters()
    assert params.cnodes == 4
    assert params.pos_per_cnode == 4
    assert params.entries_per_token == 2
    assert params.pos_per_entry == 2  # "software" twice in node 0
    assert params.as_dict()["cnodes"] == 4


def test_vocabulary(index):
    assert "usability" in index.statistics.vocabulary()
