"""Tests for corpus statistics: IDF, norms, complexity parameters."""

from __future__ import annotations

import math

import pytest

from repro.corpus import Collection
from repro.index import InvertedIndex


@pytest.fixture
def index() -> InvertedIndex:
    return InvertedIndex(
        Collection.from_texts(
            [
                "usability of software software",
                "software testing",
                "databases",
                "usability evaluation of databases",
            ]
        )
    )


def test_node_count(index):
    assert index.statistics.node_count == 4


def test_document_frequency(index):
    stats = index.statistics
    assert stats.document_frequency("software") == 2
    assert stats.document_frequency("usability") == 2
    assert stats.document_frequency("databases") == 2
    assert stats.document_frequency("missing") == 0


def test_idf_formula_matches_paper(index):
    stats = index.statistics
    assert stats.idf("software") == pytest.approx(math.log(1 + 4 / 2))
    assert stats.idf("testing") == pytest.approx(math.log(1 + 4 / 1))


def test_idf_of_missing_token_is_finite(index):
    stats = index.statistics
    assert stats.idf("missing") == pytest.approx(math.log(1 + 4 / 1))


def test_unique_token_count_and_node_length(index):
    stats = index.statistics
    assert stats.node_length(0) == 4
    assert stats.unique_token_count(0) == 3  # usability, of, software
    assert stats.node_length(42) == 0


def test_node_l2_norm_is_positive_and_matches_manual_computation(index):
    stats = index.statistics
    norm = stats.node_l2_norm(1)  # "software testing"
    tf = 1 / 2
    expected = math.sqrt(
        (tf * stats.idf("software")) ** 2 + (tf * stats.idf("testing")) ** 2
    )
    assert norm == pytest.approx(expected)


def test_query_l2_norm(index):
    stats = index.statistics
    weights = {"software": 1.0, "testing": 2.0}
    expected = math.sqrt(
        (1.0 * stats.idf("software")) ** 2 + (2.0 * stats.idf("testing")) ** 2
    )
    assert stats.query_l2_norm(weights) == pytest.approx(expected)
    assert stats.query_l2_norm({}) == 1.0


def test_complexity_parameters(index):
    params = index.statistics.complexity_parameters()
    assert params.cnodes == 4
    assert params.pos_per_cnode == 4
    assert params.entries_per_token == 2
    assert params.pos_per_entry == 2  # "software" twice in node 0
    assert params.as_dict()["cnodes"] == 4


def test_vocabulary(index):
    assert "usability" in index.statistics.vocabulary()


def test_public_collection_and_node_accessors(index):
    stats = index.statistics
    assert stats.collection is index.collection
    assert stats.node(0) is index.collection.get(0)
    from repro.exceptions import CorpusError

    with pytest.raises(CorpusError):
        stats.node(999)


def test_max_occurrences(index):
    stats = index.statistics
    assert stats.max_occurrences("software") == 2  # doubled in node 0
    assert stats.max_occurrences("usability") == 1
    assert stats.max_occurrences("missing") == 0
    # Cached: the same answer comes back without re-scanning.
    assert stats.max_occurrences("software") == 2


def test_max_occurrences_matches_across_statistics_flavours(index):
    """Sharded and live statistics agree with the single-index maxima."""
    from repro.cluster.sharded_index import ShardedIndex
    from repro.segments.live_index import LiveIndex

    collection = index.collection
    sharded = ShardedIndex(collection, 3)
    live = LiveIndex(collection)
    try:
        for token in ["software", "usability", "databases", "missing"]:
            expected = index.statistics.max_occurrences(token)
            assert sharded.statistics.max_occurrences(token) == expected
            assert live.statistics.max_occurrences(token) == expected
        # Scoring routes through the public accessor on every flavour.
        assert sharded.statistics.node(1).node_id == 1
        assert live.statistics.node(1).node_id == 1
        assert len(sharded.statistics.collection) == len(collection)
    finally:
        live.close()


def test_live_max_occurrences_track_survivors(index):
    """Deletes and updates change the survivor maxima, not the physical ones."""
    from repro.corpus import Collection
    from repro.segments.live_index import LiveIndex

    live = LiveIndex(Collection.from_texts(["beta beta beta", "beta alpha"]))
    try:
        assert live.statistics.max_occurrences("beta") == 3
        live.delete_node(0)
        assert live.statistics.max_occurrences("beta") == 1
        live.add_text("beta beta gamma")
        assert live.statistics.max_occurrences("beta") == 2
    finally:
        live.close()
