"""Tests for MultiSegmentCursor: k-way merge + tombstone filtering."""

from __future__ import annotations

import pytest

from repro.index.cursor import (
    CursorFactory,
    FAST_MODE,
    InvertedListCursor,
    MultiSegmentCursor,
    PAPER_MODE,
)
from repro.index.postings import PostingList


def make_list(token: str, entries: dict[int, list[int]]) -> PostingList:
    posting_list = PostingList(token)
    for node_id in sorted(entries):
        posting_list.add_occurrences(node_id, entries[node_id])
    return posting_list


def make_cursor(parts, mode=PAPER_MODE) -> MultiSegmentCursor:
    return MultiSegmentCursor(
        [(InvertedListCursor(pl, mode=mode), dead) for pl, dead in parts],
        mode=mode,
    )


def drain(cursor) -> list[int]:
    ids = []
    node = cursor.next_entry()
    while node is not None:
        ids.append(node)
        node = cursor.next_entry()
    return ids


def test_merges_disjoint_segments_in_id_order():
    a = make_list("t", {0: [1], 4: [2], 9: [3]})
    b = make_list("t", {2: [1], 5: [2]})
    c = make_list("t", {1: [4]})
    cursor = make_cursor([(a, None), (b, None), (c, None)])
    assert drain(cursor) == [0, 1, 2, 4, 5, 9]
    assert cursor.exhausted()
    assert cursor.current_node() is None


def test_tombstone_filter_hides_entries():
    a = make_list("t", {0: [1], 4: [2], 9: [3]})
    b = make_list("t", {2: [1]})
    dead = {4}.__contains__
    cursor = make_cursor([(a, dead), (b, None)])
    assert drain(cursor) == [0, 2, 9]


def test_token_inherited_from_children():
    a = make_list("tok", {0: [1]})
    cursor = make_cursor([(a, None)])
    assert cursor.token == "tok"


def test_get_positions_comes_from_the_owning_segment():
    a = make_list("t", {0: [1, 5], 9: [3]})
    b = make_list("t", {2: [7]})
    cursor = make_cursor([(a, None), (b, None)])
    assert cursor.next_entry() == 0
    assert [p.offset for p in cursor.get_positions()] == [1, 5]
    assert cursor.next_entry() == 2
    assert [p.offset for p in cursor.get_positions()] == [7]
    assert cursor.next_entry() == 9
    assert [p.offset for p in cursor.get_positions()] == [3]


def test_get_positions_off_entry_raises():
    cursor = make_cursor([(make_list("t", {0: [1]}), None)])
    with pytest.raises(RuntimeError):
        cursor.get_positions()
    drain(cursor)
    with pytest.raises(RuntimeError):
        cursor.get_positions()


def test_seek_lands_on_first_visible_at_or_after_target():
    a = make_list("t", {0: [1], 4: [2], 9: [3]})
    b = make_list("t", {2: [1], 6: [2]})
    cursor = make_cursor([(a, None), (b, None)])
    assert cursor.seek(3) == 4
    # seek never moves backwards and is idempotent at the current entry
    assert cursor.seek(1) == 4
    assert cursor.seek(5) == 6
    assert [p.offset for p in cursor.get_positions()] == [2]
    assert cursor.seek(100) is None
    assert cursor.exhausted()


def test_seek_skips_tombstoned_landing():
    a = make_list("t", {0: [1], 4: [2], 9: [3]})
    cursor = make_cursor([(a, {4}.__contains__)])
    assert cursor.seek(2) == 9


def test_advance_to_is_seek():
    a = make_list("t", {0: [1], 7: [2]})
    cursor = make_cursor([(a, None)])
    assert cursor.advance_to(3) == 7


def test_entry_count_sums_children():
    a = make_list("t", {0: [1], 4: [2]})
    b = make_list("t", {2: [1]})
    cursor = make_cursor([(a, None), (b, None)])
    assert cursor.entry_count() == 3


def test_children_charge_into_shared_stats():
    a = make_list("t", {0: [1], 4: [2]})
    b = make_list("t", {2: [1]})
    cursor = make_cursor([(a, None), (b, None)])
    drain(cursor)
    # Priming walks each child once; every merge step advances one child;
    # the final call discovers exhaustion.  All charges land in one place.
    assert cursor.stats.next_entry_calls >= 4
    assert cursor.stats.get_positions_calls == 0


def test_exhausted_cursor_still_charges_the_discovery_call():
    cursor = make_cursor([(make_list("t", {0: [1]}), None)])
    assert drain(cursor) == [0]
    calls = cursor.stats.next_entry_calls
    assert cursor.next_entry() is None
    assert cursor.stats.next_entry_calls == calls + 1


def test_fast_mode_charges_seeks_not_scans():
    a = make_list("t", {i: [1] for i in range(0, 40, 2)})
    cursor = make_cursor([(a, None)], mode=FAST_MODE)
    cursor.next_entry()
    sequential = cursor.stats.next_entry_calls
    assert cursor.seek(30) == 30
    assert cursor.stats.seek_calls >= 1
    assert cursor.stats.next_entry_calls == sequential


def test_factory_adoption_aggregates_stats():
    factory = CursorFactory(mode=PAPER_MODE)
    a = make_list("t", {0: [1], 4: [2]})
    cursor = factory.adopt(
        MultiSegmentCursor([(InvertedListCursor(a, mode=PAPER_MODE), None)],
                           mode=PAPER_MODE)
    )
    drain(cursor)
    assert factory.collect_stats().next_entry_calls == cursor.stats.next_entry_calls


def test_duplicate_visible_ids_are_merged_not_emitted_twice():
    # Defensive: should never happen on a healthy index, but the merge must
    # not emit one node twice if two segments claim the same visible id.
    a = make_list("t", {3: [1]})
    b = make_list("t", {3: [9]})
    cursor = make_cursor([(a, None), (b, None)])
    assert drain(cursor) == [3]
