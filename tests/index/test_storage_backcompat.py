"""Storage back-compat: v1/v2 files still load; v3 segments round-trip.

Satellite contract of the live-indexing PR: introducing the v3 segment
format must not strand existing files -- version-1 and version-2 collection
files (gzip and plain) keep loading, `load_index(validate=True)` still
passes on them, and the v3 segment writer refuses to silently downgrade.
"""

from __future__ import annotations

import gzip
import json

import pytest

from repro.corpus import Collection
from repro.exceptions import StorageError
from repro.index import load_collection, load_index, save_collection
from repro.index.storage import (
    FORMAT_VERSION,
    SEGMENT_FORMAT_VERSION,
    load_segment,
    save_segment,
)


@pytest.fixture
def collection() -> Collection:
    return Collection.from_texts(
        [
            "usability testing of software. a second sentence",
            "software task completion\n\nsecond paragraph here",
            "task analysis for usability engineering",
        ],
        name="backcompat",
    )


@pytest.mark.parametrize("suffix", [".json", ".json.gz"])
def test_v2_files_load_with_validation(tmp_path, collection, suffix):
    path = tmp_path / f"v2{suffix}"
    save_collection(collection, path)
    raw = (
        json.loads(gzip.decompress(path.read_bytes()))
        if suffix.endswith(".gz")
        else json.loads(path.read_text(encoding="utf-8"))
    )
    assert raw["version"] == FORMAT_VERSION == 2
    index = load_index(path, validate=True)
    assert index.node_ids() == collection.node_ids()


@pytest.mark.parametrize("suffix", [".json", ".json.gz"])
def test_v1_files_load_with_validation(tmp_path, collection, suffix):
    path = tmp_path / f"v1{suffix}"
    document = {
        "format": "repro-collection",
        "version": 1,
        "name": collection.name,
        # Exactly what the v1 writer produced: node records, no statistics.
        "nodes": [
            {
                "id": node.node_id,
                "metadata": dict(node.metadata),
                "occurrences": [
                    [occ.token, occ.position.offset,
                     occ.position.sentence, occ.position.paragraph]
                    for occ in node.occurrences
                ],
            }
            for node in collection
        ],
    }
    payload = json.dumps(document).encode("utf-8")
    if suffix.endswith(".gz"):
        path.write_bytes(gzip.compress(payload))
    else:
        path.write_bytes(payload)
    index = load_index(path, validate=True)
    assert index.node_ids() == collection.node_ids()
    assert load_collection(path).describe() == collection.describe()


@pytest.mark.parametrize("suffix", [".json", ".json.gz"])
def test_v3_segment_round_trip(tmp_path, collection, suffix):
    path = tmp_path / f"segment{suffix}"
    nodes = list(collection)
    save_segment(nodes, path, generation=7)
    restored, generation = load_segment(path)
    assert generation == 7
    assert [n.node_id for n in restored] == [n.node_id for n in nodes]
    for original, back in zip(nodes, restored):
        assert back.tokens == original.tokens
        assert [p.paragraph for p in back.positions()] == [
            p.paragraph for p in original.positions()
        ]


def test_v3_writer_refuses_to_downgrade(tmp_path, collection):
    nodes = list(collection)
    for version in (1, 2):
        with pytest.raises(StorageError, match="refusing to downgrade"):
            save_segment(
                nodes, tmp_path / "seg.json", generation=1, version=version
            )
    save_segment(
        nodes, tmp_path / "seg.json", generation=1, version=SEGMENT_FORMAT_VERSION
    )


def test_load_segment_rejects_collection_files_and_vice_versa(tmp_path, collection):
    collection_path = tmp_path / "collection.json"
    save_collection(collection, collection_path)
    with pytest.raises(StorageError, match="not a repro segment"):
        load_segment(collection_path)
    segment_path = tmp_path / "segment.json"
    save_segment(list(collection), segment_path, generation=1)
    with pytest.raises(StorageError, match="not a repro collection"):
        load_collection(segment_path)


def test_load_segment_rejects_truncation(tmp_path, collection):
    path = tmp_path / "segment.json"
    save_segment(list(collection), path, generation=1)
    document = json.loads(path.read_text(encoding="utf-8"))
    document["nodes"] = document["nodes"][:-1]
    path.write_text(json.dumps(document), encoding="utf-8")
    with pytest.raises(StorageError, match="statistics do not match"):
        load_segment(path)


def test_load_segment_rejects_future_versions(tmp_path, collection):
    path = tmp_path / "segment.json"
    save_segment(list(collection), path, generation=1)
    document = json.loads(path.read_text(encoding="utf-8"))
    document["version"] = 99
    path.write_text(json.dumps(document), encoding="utf-8")
    with pytest.raises(StorageError, match="unsupported segment format"):
        load_segment(path)


def test_load_segment_rejects_missing_generation(tmp_path, collection):
    path = tmp_path / "segment.json"
    save_segment(list(collection), path, generation=1)
    document = json.loads(path.read_text(encoding="utf-8"))
    del document["generation"]
    path.write_text(json.dumps(document), encoding="utf-8")
    with pytest.raises(StorageError, match="generation"):
        load_segment(path)
