"""Tests for inverted-index construction and the IL_ANY list."""

from __future__ import annotations

import pytest

from repro.corpus import Collection, ContextNode
from repro.index import ANY_TOKEN, InvertedIndex, build_index, merge_node_ids


@pytest.fixture
def index(figure1_collection) -> InvertedIndex:
    return InvertedIndex(figure1_collection)


def test_posting_lists_cover_exactly_the_vocabulary(index, figure1_collection):
    assert set(index.tokens()) == figure1_collection.vocabulary()


def test_entries_are_sorted_by_node_id(index):
    for posting_list in index.posting_lists():
        node_ids = posting_list.node_ids()
        assert node_ids == sorted(node_ids)


def test_positions_match_the_documents(index, figure1_collection):
    usability = index.posting_list("usability")
    for entry in usability:
        node = figure1_collection.get(entry.node_id)
        expected = [pos.offset for pos in node.positions_of("usability")]
        assert entry.position_offsets() == expected


def test_absent_token_has_empty_posting_list(index):
    posting_list = index.posting_list("definitely-not-a-token")
    assert len(posting_list) == 0


def test_any_list_has_one_entry_per_nonempty_node(index, figure1_collection):
    any_list = index.any_list()
    assert any_list.node_ids() == figure1_collection.node_ids()
    for entry in any_list:
        assert len(entry) == len(figure1_collection.get(entry.node_id))


def test_any_list_skips_empty_nodes():
    collection = Collection.from_nodes(
        [ContextNode.from_tokens(0, ["a"]), ContextNode(1, ())]
    )
    index = InvertedIndex(collection)
    assert index.any_list().node_ids() == [0]
    index.validate()


def test_document_frequency(index):
    assert index.document_frequency("usability") == 2
    assert index.document_frequency("efficient") == 3
    assert index.document_frequency("missing") == 0


def test_open_cursor_for_any_token(index, figure1_collection):
    cursor = index.open_cursor(ANY_TOKEN)
    seen = []
    node = cursor.next_entry()
    while node is not None:
        seen.append(node)
        node = cursor.next_entry()
    assert seen == figure1_collection.node_ids()


def test_validate_passes_on_freshly_built_index(index):
    index.validate()


def test_build_index_helper(figure1_collection):
    assert build_index(figure1_collection).node_count() == len(figure1_collection)


def test_merge_node_ids(index):
    merged = merge_node_ids(
        [index.posting_list("usability"), index.posting_list("databases")]
    )
    assert merged == sorted(
        set(index.posting_list("usability").node_ids())
        | set(index.posting_list("databases").node_ids())
    )


def test_node_count_and_ids(index, figure1_collection):
    assert index.node_count() == len(figure1_collection)
    assert index.node_ids() == figure1_collection.node_ids()
