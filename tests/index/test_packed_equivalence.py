"""Packed v4 indexes answer queries byte-identically to in-memory indexes.

The tentpole contract of the mmap-scatter PR: for every language fragment
(BOOL / PPRED / NPRED), both access modes, every scoring model and both
unbounded and top-k execution, an :class:`Executor` over a
:class:`PackedInvertedIndex` (mmap-backed, zero-copy) returns exactly the
node ids, bit-identical scores, the same ranking order and the same cursor
statistics as an :class:`Executor` over the in-memory index it was spilled
from.
"""

from __future__ import annotations

import pytest

from repro.core.query import parse_query
from repro.corpus import Collection
from repro.engine.executor import Executor
from repro.exceptions import IndexError_
from repro.index import InvertedIndex, PackedInvertedIndex, save_packed_index
from repro.model.predicates import default_registry
from repro.scoring.base import get_model

TEXTS = [
    "usability testing of efficient software",
    "software measures how well users achieve task completion",
    "efficient task completion with usability in mind",
    "databases support full text search with inverted lists",
    "networks route packets between hosts efficiently",
    "software usability and software testing",
    "usability of software task completion software",
    "efficient inverted lists for efficient search",
    "task completion and task analysis for software",
    "search engines rank documents by usability measures",
]

QUERIES = [
    # BOOL (positive and with negation)
    "'software'",
    "'software' AND 'usability'",
    "'software' OR 'databases'",
    "'efficient' AND NOT 'networks'",
    "NOT 'software'",
    # PPRED (positive position predicates)
    "dist('task', 'completion', 2)",
    "SOME p1 SOME p2 (p1 HAS 'software' AND p2 HAS 'usability' "
    "AND ordered(p1, p2))",
    # NPRED (negative position predicates)
    "SOME p1 SOME p2 (p1 HAS 'task' AND p2 HAS 'completion' "
    "AND not_ordered(p1, p2))",
]


@pytest.fixture(scope="module")
def indexes(tmp_path_factory):
    collection = Collection.from_texts(TEXTS, name="packed-equivalence")
    memory = InvertedIndex(collection)
    path = tmp_path_factory.mktemp("packed") / "index.seg"
    save_packed_index(memory, path)
    packed = PackedInvertedIndex.open(path)
    yield memory, packed
    packed.close()


def _executors(indexes, scoring_name, access_mode):
    memory, packed = indexes
    registry = default_registry()
    executors = []
    for index in (memory, packed):
        scoring = (
            None if scoring_name == "none"
            else get_model(scoring_name, index.statistics)
        )
        executors.append(
            Executor(index, registry, scoring, access_mode=access_mode)
        )
    return executors


@pytest.mark.parametrize("access_mode", ["paper", "fast"])
@pytest.mark.parametrize("scoring_name", ["none", "tfidf", "probabilistic"])
@pytest.mark.parametrize("query_text", QUERIES)
def test_packed_executor_is_byte_identical(
    indexes, query_text, scoring_name, access_mode
):
    reference, packed = _executors(indexes, scoring_name, access_mode)
    query = parse_query(query_text).node
    for top_k in (None, 3):
        expected = reference.execute(query, top_k=top_k)
        actual = packed.execute(query, top_k=top_k)
        assert actual.node_ids == expected.node_ids
        assert actual.ranked() == expected.ranked()  # exact float equality
        assert actual.language_class == expected.language_class
        assert actual.engine == expected.engine
        if expected.cursor_stats is not None:
            assert (
                actual.cursor_stats.as_extended_dict()
                == expected.cursor_stats.as_extended_dict()
            )


@pytest.mark.parametrize("access_mode", ["paper", "fast"])
def test_packed_execute_many_is_byte_identical(indexes, access_mode):
    reference, packed = _executors(indexes, "tfidf", access_mode)
    queries = [parse_query(text).node for text in QUERIES]
    expected = reference.execute_many(queries, top_k=4)
    actual = packed.execute_many(queries, top_k=4)
    assert [r.node_ids for r in actual] == [r.node_ids for r in expected]
    assert [r.ranked() for r in actual] == [r.ranked() for r in expected]


def test_packed_statistics_match_in_memory(indexes):
    memory, packed = indexes
    reference = memory.statistics
    actual = packed.statistics
    assert actual.node_count == reference.node_count
    for token in memory.tokens():
        assert actual.document_frequency(token) == reference.document_frequency(
            token
        )
        assert actual.idf(token) == reference.idf(token)
    for node_id in memory.collection.node_ids():
        assert actual.node_length(node_id) == reference.node_length(node_id)
        assert actual.node_l2_norm(node_id) == reference.node_l2_norm(node_id)


def test_packed_index_surface(indexes):
    memory, packed = indexes
    assert packed.tokens() == memory.tokens()
    assert packed.node_count() == memory.node_count()
    assert packed.collection.node_ids() == memory.collection.node_ids()
    assert len(packed.any_list()) == len(memory.any_list())
    node = packed.collection.nodes[0]
    assert node.occurrences == memory.collection.nodes[0].occurrences
    with pytest.raises(IndexError_):
        packed.add_node(node)
