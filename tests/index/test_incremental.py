"""Tests for incremental index updates (appending documents)."""

from __future__ import annotations

import pytest

from repro.corpus import Collection, ContextNode
from repro.engine.ppred_engine import PPredEngine
from repro.exceptions import CorpusError, IndexError_
from repro.index import InvertedIndex
from repro.languages.parser import LanguageLevel, QueryParser

_PARSER = QueryParser(LanguageLevel.COMP)


@pytest.fixture
def index() -> InvertedIndex:
    return InvertedIndex(
        Collection.from_texts(["usability of software", "software testing"])
    )


def test_add_text_assigns_the_next_id_and_is_searchable(index):
    new_id = index.add_text("efficient usability evaluation")
    assert new_id == 2
    assert index.document_frequency("usability") == 2
    assert index.posting_list("usability").node_ids() == [0, 2]
    assert index.any_list().node_ids() == [0, 1, 2]
    index.validate()


def test_appended_documents_are_visible_to_the_engines(index):
    index.add_text("task completion requires efficient software")
    query = _PARSER.parse_closed("dist('efficient', 'software', 0)")
    assert PPredEngine(index).evaluate(query) == [2]


def test_incremental_build_matches_batch_build():
    texts = [
        "usability of software",
        "software testing and evaluation",
        "efficient task completion",
        "databases and retrieval",
    ]
    batch = InvertedIndex(Collection.from_texts(texts))

    incremental = InvertedIndex(Collection.from_texts(texts[:1]))
    for text in texts[1:]:
        incremental.add_text(text)

    assert incremental.tokens() == batch.tokens()
    for token in batch.tokens():
        assert [
            (entry.node_id, entry.position_offsets())
            for entry in incremental.posting_list(token)
        ] == [
            (entry.node_id, entry.position_offsets())
            for entry in batch.posting_list(token)
        ]


def test_statistics_are_refreshed_after_appending(index):
    before = index.statistics.node_count
    index.add_text("completely new words here")
    assert index.statistics.node_count == before + 1
    assert index.statistics.document_frequency("completely") == 1


def test_out_of_order_ids_are_rejected(index):
    with pytest.raises(IndexError_):
        index.add_node(ContextNode.from_tokens(0, ["duplicate"]))
    with pytest.raises(IndexError_):
        index.add_node(ContextNode.from_tokens(1, ["too", "small"]))
    index.add_node(ContextNode.from_tokens(10, ["gap", "is", "fine"]))
    assert index.next_node_id() == 11


def test_incremental_columns_stay_searchable_and_valid(index):
    """add_node/add_text followed by search and validate() on the columnar store."""
    first = index.add_text("usability engineering for efficient software")
    second = index.add_text("efficient software testing improves usability")
    assert [first, second] == [2, 3]
    index.validate()
    from repro.core.engine import FullTextEngine

    for mode in ("paper", "fast"):
        engine = FullTextEngine(index, access_mode=mode)
        results = engine.search("'usability' AND 'software'")
        assert [r.node_id for r in results] == [0, 2, 3]
        positional = engine.search("dist('efficient', 'software', 0)")
        assert [r.node_id for r in positional] == [2, 3]
    # The appended entries decode to exactly the positions that were indexed.
    usability = index.posting_list("usability")
    last_entry = usability.entry_for(3)
    assert last_entry is not None
    node = index.collection.get(3)
    assert last_entry.position_offsets() == [
        p.offset for p in node.positions_of("usability")
    ]


def test_collection_add_rejects_duplicates():
    collection = Collection.from_texts(["one document"])
    with pytest.raises(CorpusError):
        collection.add(ContextNode.from_tokens(0, ["again"]))
    collection.add(ContextNode.from_tokens(5, ["more"]))
    assert collection.next_node_id() == 6
    assert Collection.from_nodes([]).next_node_id() == 0
