"""Tests for posting entries and posting lists."""

from __future__ import annotations

import pytest

from repro.exceptions import IndexError_
from repro.index.postings import PostingEntry, PostingList
from repro.model.positions import Position


def positions(*offsets: int) -> tuple[Position, ...]:
    return tuple(Position(offset) for offset in offsets)


def test_entry_requires_positions():
    with pytest.raises(IndexError_):
        PostingEntry(1, ())


def test_entry_requires_sorted_positions():
    with pytest.raises(IndexError_):
        PostingEntry(1, positions(5, 3))


def test_entry_rejects_duplicate_positions():
    with pytest.raises(IndexError_):
        PostingEntry(1, positions(3, 3))


def test_entry_accessors():
    entry = PostingEntry(4, positions(1, 5, 9))
    assert len(entry) == 3
    assert entry.position_offsets() == [1, 5, 9]


def test_posting_list_append_enforces_increasing_node_ids():
    posting_list = PostingList("tok")
    posting_list.add_occurrences(1, positions(0))
    posting_list.add_occurrences(3, positions(2))
    with pytest.raises(IndexError_):
        posting_list.add_occurrences(2, positions(1))
    with pytest.raises(IndexError_):
        posting_list.add_occurrences(3, positions(5))


def test_posting_list_accessors():
    posting_list = PostingList("tok")
    posting_list.add_occurrences(1, positions(0, 4))
    posting_list.add_occurrences(7, positions(2, 3, 8))
    assert posting_list.node_ids() == [1, 7]
    assert posting_list.document_frequency() == 2
    assert posting_list.total_positions() == 5
    assert posting_list.max_positions_per_entry() == 3
    assert len(posting_list) == 2
    assert bool(posting_list)


def test_posting_list_entry_for_random_access():
    posting_list = PostingList("tok")
    posting_list.add_occurrences(2, positions(0))
    posting_list.add_occurrences(9, positions(1))
    assert posting_list.entry_for(9).node_id == 9
    assert posting_list.entry_for(5) is None


def test_empty_posting_list():
    posting_list = PostingList("tok")
    assert not posting_list
    assert posting_list.document_frequency() == 0
    assert posting_list.max_positions_per_entry() == 0
    assert posting_list.entries() == []


def test_shared_empty_posting_list_rejects_all_mutation():
    from repro.index.postings import EmptyPostingList

    shared = EmptyPostingList("")
    with pytest.raises(IndexError_, match="immutable"):
        shared.add_occurrences(0, positions(0))
    with pytest.raises(IndexError_, match="immutable"):
        shared.append(PostingEntry(0, positions(0)))
    with pytest.raises(IndexError_, match="immutable"):
        EmptyPostingList("tok", entries=[PostingEntry(0, positions(0))])
    # A failed mutation attempt must leave the shared instance empty.
    assert len(shared) == 0
    assert shared.node_ids() == []
    shared.validate()


def test_shared_empty_posting_list_is_one_instance_per_index():
    from repro.corpus import Collection
    from repro.index import InvertedIndex

    index = InvertedIndex(Collection.from_texts(["some text"]))
    first = index.posting_list("missing-token-one")
    second = index.posting_list("missing-token-two")
    assert first is second  # the shared singleton, not a fresh allocation
    assert len(first) == 0
