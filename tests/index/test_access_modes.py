"""Tests for the columnar posting storage and the seek-capable cursor layer.

Covers the seek edge cases named in the refactor issue (seek before the
first entry, to a gap, past the end, after exhaustion), the two cost
accounting modes, and the columnar-specific machinery (lazy views, memory
footprint, validation, the shared empty-list singleton).
"""

from __future__ import annotations

import pytest

from repro.exceptions import EvaluationError, IndexError_
from repro.index import InvertedIndex
from repro.index.cursor import (
    FAST_MODE,
    PAPER_MODE,
    CursorFactory,
    CursorStats,
    InvertedListCursor,
    check_access_mode,
)
from repro.index.inverted_index import _EMPTY_LIST
from repro.index.postings import EmptyPostingList, PostingList
from repro.corpus import Collection
from repro.model.positions import Position


def make_list(*node_ids: int) -> PostingList:
    posting_list = PostingList("tok")
    for node_id in node_ids:
        posting_list.add_occurrences(node_id, (Position(0), Position(2)))
    return posting_list


@pytest.fixture
def gappy() -> PostingList:
    # Node ids with gaps: seeks can land before, inside, and past the list.
    return make_list(2, 5, 9, 14, 30)


# ---------------------------------------------------------------- seek edges
@pytest.mark.parametrize("mode", [PAPER_MODE, FAST_MODE])
def test_seek_before_first_entry(gappy, mode):
    cursor = InvertedListCursor(gappy, mode=mode)
    assert cursor.seek(1) == 2
    assert cursor.current_node() == 2


@pytest.mark.parametrize("mode", [PAPER_MODE, FAST_MODE])
def test_seek_to_gap_lands_on_next_entry(gappy, mode):
    cursor = InvertedListCursor(gappy, mode=mode)
    assert cursor.seek(6) == 9
    assert cursor.seek(10) == 14


@pytest.mark.parametrize("mode", [PAPER_MODE, FAST_MODE])
def test_seek_past_the_end_exhausts(gappy, mode):
    cursor = InvertedListCursor(gappy, mode=mode)
    assert cursor.seek(31) is None
    assert cursor.exhausted()


@pytest.mark.parametrize("mode", [PAPER_MODE, FAST_MODE])
def test_seek_after_exhaustion_stays_none(gappy, mode):
    cursor = InvertedListCursor(gappy, mode=mode)
    cursor.seek(100)
    assert cursor.seek(1) is None
    assert cursor.seek(100) is None


@pytest.mark.parametrize("mode", [PAPER_MODE, FAST_MODE])
def test_seek_never_moves_backwards(gappy, mode):
    cursor = InvertedListCursor(gappy, mode=mode)
    assert cursor.seek(14) == 14
    assert cursor.seek(3) == 14  # already past 3: stays put
    assert cursor.current_node() == 14


@pytest.mark.parametrize("mode", [PAPER_MODE, FAST_MODE])
def test_seek_interleaves_with_sequential_api(gappy, mode):
    cursor = InvertedListCursor(gappy, mode=mode)
    assert cursor.next_entry() == 2
    assert [p.offset for p in cursor.get_positions()] == [0, 2]
    assert cursor.seek(9) == 9
    assert [p.offset for p in cursor.get_positions()] == [0, 2]
    assert cursor.next_entry() == 14


# ------------------------------------------------------------- cost accounting
def test_paper_mode_seek_charges_exactly_like_sequential_stepping(gappy):
    """The paper-mode charge of a seek equals a literal next_entry loop."""
    seeker = InvertedListCursor(gappy, mode=PAPER_MODE)
    stepper = InvertedListCursor(gappy, mode=PAPER_MODE)

    def step_advance(cursor, target):
        current = cursor.current_node()
        if current is not None and current >= target:
            return current
        while True:
            current = cursor.next_entry()
            if current is None or current >= target:
                return current

    for target in (1, 5, 5, 11, 31, 40, 50):
        assert seeker.seek(target) == step_advance(stepper, target)
        assert seeker.stats.as_dict() == stepper.stats.as_dict()
    assert seeker.stats.seek_calls == 0
    assert seeker.stats.seek_probes == 0


def test_fast_mode_seek_charges_log_not_linear():
    posting_list = make_list(*range(0, 4096, 2))
    cursor = InvertedListCursor(posting_list, mode=FAST_MODE)
    assert cursor.seek(4000) == 4000
    assert cursor.stats.next_entry_calls == 0
    assert cursor.stats.seek_calls == 1
    # Galloping + binary search: far fewer probes than the 2000 entries skipped.
    assert 0 < cursor.stats.seek_probes <= 2 * 12 + PostingList.SEEK_LINEAR_LIMIT


def test_fast_mode_seek_on_current_entry_is_uncharged(gappy):
    cursor = InvertedListCursor(gappy, mode=FAST_MODE)
    cursor.seek(5)
    charged = cursor.stats.seek_calls
    assert cursor.seek(5) == 5
    assert cursor.seek(4) == 5
    assert cursor.stats.seek_calls == charged


def test_advance_to_is_seek(gappy):
    cursor = InvertedListCursor(gappy, mode=PAPER_MODE)
    assert cursor.advance_to(6) == 9
    assert cursor.advance_to(100) is None


def test_cursor_stats_extended_dict_and_delta():
    stats = CursorStats(1, 2, 3, 4, 5)
    assert stats.as_dict() == {
        "next_entry_calls": 1,
        "get_positions_calls": 2,
        "positions_returned": 3,
    }
    assert stats.as_extended_dict()["seek_calls"] == 4
    assert stats.as_extended_dict()["seek_probes"] == 5
    delta = stats.delta_since(CursorStats(1, 1, 1, 1, 1))
    assert delta.as_extended_dict() == {
        "next_entry_calls": 0,
        "get_positions_calls": 1,
        "positions_returned": 2,
        "seek_calls": 3,
        "seek_probes": 4,
    }
    assert stats.copy().as_extended_dict() == stats.as_extended_dict()


def test_factory_fixes_the_mode_and_rejects_unknown_modes(gappy):
    factory = CursorFactory(mode=FAST_MODE)
    cursor = factory.open(gappy)
    assert cursor.mode == FAST_MODE
    with pytest.raises(EvaluationError):
        CursorFactory(mode="warp")
    with pytest.raises(EvaluationError):
        InvertedListCursor(gappy, mode="warp")
    with pytest.raises(EvaluationError):
        check_access_mode("warp")


# --------------------------------------------------------------- columnar core
def test_columnar_lazy_views_round_trip():
    posting_list = PostingList("tok")
    posting_list.add_occurrences(3, (Position(1, 0, 0), Position(4, 1, 0), Position(9, 2, 1)))
    posting_list.add_occurrences(8, (Position(0, 0, 0),))
    entry = posting_list.entry(0)
    assert entry.node_id == 3
    assert entry.position_offsets() == [1, 4, 9]
    # Structural ordinals survive the columnar encoding.
    assert [p.sentence for p in posting_list.positions_at(0)] == [0, 1, 2]
    assert [p.paragraph for p in posting_list.positions_at(0)] == [0, 0, 1]
    assert posting_list.position_offsets_at(1) == [0]
    assert list(posting_list.node_id_column()) == [3, 8]
    posting_list.validate()


def test_columnar_rejects_bad_occurrences_and_rolls_back():
    posting_list = PostingList("tok")
    posting_list.add_occurrences(1, (Position(0),))
    with pytest.raises(IndexError_):
        posting_list.add_occurrences(2, (Position(5), Position(3)))
    with pytest.raises(IndexError_):
        posting_list.add_occurrences(2, (Position(3), Position(3)))
    with pytest.raises(IndexError_):
        posting_list.add_occurrences(2, ())
    # The failed entries left no partial columns behind.
    assert len(posting_list) == 1
    assert posting_list.total_positions() == 1
    posting_list.validate()
    posting_list.add_occurrences(2, (Position(3), Position(5)))
    assert posting_list.node_ids() == [1, 2]


def test_columnar_widens_for_large_values():
    posting_list = PostingList("tok")
    posting_list.add_occurrences(1, (Position(0),))
    huge = 2**40
    posting_list.add_occurrences(huge, (Position(huge),))
    assert posting_list.node_ids() == [1, huge]
    assert posting_list.position_offsets_at(1) == [huge]
    posting_list.validate()


def test_overflow_mid_append_rolls_back_cleanly():
    posting_list = PostingList("tok")
    posting_list.add_occurrences(1, (Position(0),))
    with pytest.raises(OverflowError):
        posting_list.add_occurrences(2**65, (Position(1),))
    # The failed entry left no orphaned position values behind.
    posting_list.add_occurrences(5, (Position(2),))
    assert posting_list.entry_for(5).position_offsets() == [2]
    assert posting_list.total_positions() == 2
    posting_list.validate()


def test_seek_stays_within_the_cursor_snapshot():
    posting_list = make_list(0, 1, 2, 3, 4)
    cursor = InvertedListCursor(posting_list, mode=PAPER_MODE)
    for node_id in range(5, 100):
        posting_list.add_occurrences(node_id, (Position(0),))
    # Entries appended after the cursor opened are invisible to it, and the
    # paper charge is the snapshot's sequential cost (5 entries + the call
    # that discovers exhaustion), not a walk over the live list.
    assert cursor.seek(50) is None
    assert cursor.stats.next_entry_calls == 6


def test_accepts_plain_int_offsets():
    posting_list = PostingList("tok")
    posting_list.add_occurrences(1, (0, 3, 7))
    assert posting_list.position_offsets_at(0) == [0, 3, 7]


def test_memory_breakdown_counts_payload_bytes():
    posting_list = make_list(1, 2, 3)
    breakdown = posting_list.memory_breakdown()
    assert breakdown["node_ids_bytes"] == 3 * posting_list._node_ids.itemsize
    assert posting_list.memory_bytes() == sum(breakdown.values())


def test_seek_index_linear_and_binary_paths(gappy):
    assert gappy.seek_index(0, 1) == (0, 1)
    index, probes = gappy.seek_index(0, 30)
    assert index == 4 and probes >= 1
    assert gappy.seek_index(0, 31)[0] == 5
    assert gappy.seek_index(5, 1) == (5, 0)


# ------------------------------------------------------- empty-list singleton
def test_absent_token_lookup_returns_shared_singleton():
    index = InvertedIndex(Collection.from_texts(["alpha beta"]))
    first = index.posting_list("missing")
    second = index.posting_list("also-missing")
    assert first is second is _EMPTY_LIST
    assert len(first) == 0
    assert isinstance(first, EmptyPostingList)


def test_shared_empty_list_is_immutable():
    index = InvertedIndex(Collection.from_texts(["alpha beta"]))
    empty = index.posting_list("missing")
    with pytest.raises(IndexError_):
        empty.add_occurrences(1, (Position(0),))


def test_cursor_over_absent_token_carries_requested_token():
    index = InvertedIndex(Collection.from_texts(["alpha beta"]))
    cursor = index.open_cursor("missing")
    assert cursor.token == "missing"
    assert cursor.next_entry() is None
    factory = CursorFactory(mode=FAST_MODE)
    cursor = index.open_cursor("missing", factory)
    assert cursor.token == "missing"
    assert cursor.mode == FAST_MODE


def test_index_memory_footprint_totals():
    index = InvertedIndex(Collection.from_texts(["alpha beta alpha", "beta gamma"]))
    footprint = index.memory_footprint()
    assert footprint["total_bytes"] == sum(
        value for key, value in footprint.items() if key != "total_bytes"
    )
    assert footprint["total_bytes"] > 0
