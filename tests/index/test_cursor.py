"""Tests for the sequential inverted-list cursor API."""

from __future__ import annotations

import pytest

from repro.index.cursor import CursorFactory, CursorStats, InvertedListCursor
from repro.index.postings import PostingList
from repro.model.positions import Position


@pytest.fixture
def posting_list() -> PostingList:
    posting_list = PostingList("tok")
    posting_list.add_occurrences(1, (Position(0), Position(4)))
    posting_list.add_occurrences(5, (Position(2),))
    posting_list.add_occurrences(9, (Position(1), Position(3), Position(8)))
    return posting_list


def test_next_entry_walks_entries_in_order(posting_list):
    cursor = InvertedListCursor(posting_list)
    assert cursor.next_entry() == 1
    assert cursor.next_entry() == 5
    assert cursor.next_entry() == 9
    assert cursor.next_entry() is None
    assert cursor.exhausted()


def test_next_entry_after_exhaustion_stays_none(posting_list):
    cursor = InvertedListCursor(posting_list)
    for _ in range(5):
        cursor.next_entry()
    assert cursor.next_entry() is None


def test_get_positions_returns_current_entry_positions(posting_list):
    cursor = InvertedListCursor(posting_list)
    cursor.next_entry()
    assert [pos.offset for pos in cursor.get_positions()] == [0, 4]
    cursor.next_entry()
    assert [pos.offset for pos in cursor.get_positions()] == [2]


def test_get_positions_before_first_entry_raises(posting_list):
    cursor = InvertedListCursor(posting_list)
    with pytest.raises(RuntimeError):
        cursor.get_positions()


def test_current_node_tracks_cursor(posting_list):
    cursor = InvertedListCursor(posting_list)
    assert cursor.current_node() is None
    cursor.next_entry()
    assert cursor.current_node() == 1


def test_advance_to_skips_sequentially(posting_list):
    cursor = InvertedListCursor(posting_list)
    assert cursor.advance_to(5) == 5
    assert cursor.advance_to(5) == 5  # already there, no movement
    assert cursor.advance_to(7) == 9
    assert cursor.advance_to(100) is None


def test_statistics_count_operations(posting_list):
    cursor = InvertedListCursor(posting_list)
    cursor.next_entry()
    cursor.get_positions()
    cursor.next_entry()
    cursor.get_positions()
    stats = cursor.stats
    assert stats.next_entry_calls == 2
    assert stats.get_positions_calls == 2
    assert stats.positions_returned == 3  # 2 + 1


def test_cursor_factory_aggregates_stats(posting_list):
    factory = CursorFactory()
    first = factory.open(posting_list)
    second = factory.open(posting_list)
    first.next_entry()
    second.next_entry()
    second.next_entry()
    total = factory.collect_stats()
    assert total.next_entry_calls == 3


def test_cursor_stats_merge_and_dict():
    first = CursorStats(1, 2, 3)
    second = CursorStats(10, 20, 30)
    first.merge(second)
    assert first.as_dict() == {
        "next_entry_calls": 11,
        "get_positions_calls": 22,
        "positions_returned": 33,
    }


def test_empty_posting_list_cursor():
    cursor = InvertedListCursor(PostingList("tok"))
    assert cursor.next_entry() is None
    assert cursor.exhausted()
