"""Tests for the programmatic query builders."""

from __future__ import annotations

import pytest

from repro import Collection, FullTextEngine
from repro.exceptions import QuerySemanticsError
from repro.languages import ast
from repro.languages.builders import (
    all_of,
    any_of,
    excluding,
    keywords,
    near,
    not_,
    not_near,
    ordered_near,
    phrase,
    term,
    within_same,
)
from repro.languages.classify import LanguageClass, classify_query


@pytest.fixture(scope="module")
def engine() -> FullTextEngine:
    collection = Collection.from_texts(
        [
            # node 0: phrase "task completion" present, 'efficient' before it
            "usability of an efficient software supports quick task completion",
            # node 1: words present but phrase reversed
            "completion of a task is efficient",
            # node 2: phrase present but 'efficient' after it
            "task completion can be efficient",
            # node 3: unrelated
            "databases index tokens\n\nretrieval uses inverted lists",
        ]
    )
    return FullTextEngine.from_collection(collection)


def test_term_and_keywords(engine):
    assert engine.search(term("efficient")).node_ids == [0, 1, 2]
    assert engine.search(keywords("task", "completion")).node_ids == [0, 1, 2]
    assert classify_query(keywords("task", "completion")) is LanguageClass.BOOL_NONEG


def test_term_normalises_case_and_rejects_empty():
    assert term(" Task ") == ast.TokenQuery("task")
    with pytest.raises(QuerySemanticsError):
        term("   ")


def test_boolean_combinators(engine):
    query = excluding(any_of(term("task"), term("databases")), term("efficient"))
    assert engine.search(query).node_ids == [3]
    negated = all_of(term("task"), not_(term("usability")))
    assert engine.search(negated).node_ids == [1, 2]
    with pytest.raises(QuerySemanticsError):
        all_of()
    with pytest.raises(QuerySemanticsError):
        any_of()


def test_phrase_matches_consecutive_ordered_tokens(engine):
    results = engine.search(phrase("task completion"))
    assert results.node_ids == [0, 2]
    # single-token phrase degenerates to a term
    assert phrase("task") == ast.TokenQuery("task")
    assert engine.search(phrase(["task", "completion"])).node_ids == [0, 2]


def test_phrase_queries_are_closed_and_ppred(engine):
    query = phrase("task completion")
    assert query.is_closed()
    assert classify_query(query) is LanguageClass.PPRED


def test_near_with_flags(engine):
    assert engine.search(near("efficient", "task", distance=3)).node_ids == [0, 1, 2]
    assert engine.search(
        near("efficient", "task", distance=3, ordered=True)
    ).node_ids == [0]
    # same-paragraph constraint: node 3 splits its content across paragraphs.
    assert engine.search(
        near("databases", "retrieval", distance=10, same_paragraph=True)
    ).node_ids == []
    assert engine.search(
        near("databases", "index", distance=10, same_sentence=True)
    ).node_ids == [3]


def test_ordered_near_reproduces_use_case_10_4(engine):
    query = ordered_near(term("efficient"), phrase("task completion"), distance=10)
    assert engine.search(query).node_ids == [0]
    # Reversed operands match node 2 instead.
    reversed_query = ordered_near(phrase("task completion"), term("efficient"), distance=10)
    assert engine.search(reversed_query).node_ids == [2]


def test_not_near_uses_negative_predicate(engine):
    query = not_near("task", "completion", distance=0)
    assert classify_query(query) is LanguageClass.NPRED
    # Only node 1 has task/completion further than adjacent... node 0 has a
    # single adjacent pair only; node 1 has them 3 apart.
    assert engine.search(query).node_ids == [1]


def test_within_same_scope(engine):
    assert engine.search(within_same("sentence", "task", "completion")).node_ids == [
        0,
        1,
        2,
    ]
    assert engine.search(within_same("paragraph", "databases", "retrieval")).node_ids == []
    with pytest.raises(QuerySemanticsError):
        within_same("chapter", "a", "b")
    with pytest.raises(QuerySemanticsError):
        within_same("sentence", "only-one")


def test_builders_compose_with_each_other(engine):
    query = all_of(phrase("task completion"), not_(term("usability")))
    assert engine.search(query).node_ids == [2]
    assert classify_query(query) is LanguageClass.PPRED


def test_ordered_near_rejects_unsupported_operands():
    with pytest.raises(QuerySemanticsError):
        ordered_near(not_(term("a")), term("b"), distance=1)
    with pytest.raises(QuerySemanticsError):
        near(phrase("two words"), "b", distance=1)
