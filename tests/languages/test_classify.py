"""Tests for the language-class classifier (the Figure 3 hierarchy)."""

from __future__ import annotations

import pytest

from repro.languages.classify import LanguageClass, can_evaluate, classify_query
from repro.languages.parser import LanguageLevel, QueryParser

_PARSER = QueryParser(LanguageLevel.COMP)


def classify(text: str) -> LanguageClass:
    return classify_query(_PARSER.parse(text))


# --------------------------------------------------------------------------
# BOOL family
# --------------------------------------------------------------------------
@pytest.mark.parametrize(
    "text",
    [
        "'a'",
        "'a' AND 'b'",
        "'a' OR 'b' AND 'c'",
        "'a' AND NOT 'b'",
        "('a' AND NOT 'b') OR 'c'",
    ],
)
def test_bool_noneg_queries(text):
    assert classify(text) is LanguageClass.BOOL_NONEG


@pytest.mark.parametrize(
    "text",
    [
        "NOT 'a'",
        "ANY",
        "'a' AND ANY",
        "'a' OR NOT 'b'",
        "NOT 'a' AND NOT 'b'",
        "NOT ('a' AND 'b')",
    ],
)
def test_bool_queries_requiring_il_any(text):
    assert classify(text) is LanguageClass.BOOL


# --------------------------------------------------------------------------
# PPRED
# --------------------------------------------------------------------------
@pytest.mark.parametrize(
    "text",
    [
        "dist('a', 'b', 5)",
        "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND distance(p1, p2, 5))",
        "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND ordered(p1, p2) "
        "AND samepara(p1, p2))",
        # negation of a *closed* subquery is allowed in PPRED
        "SOME p1 (p1 HAS 'a') AND NOT 'b'",
        "dist('a', 'b', 5) OR dist('c', 'd', 2)",
    ],
)
def test_ppred_queries(text):
    assert classify(text) is LanguageClass.PPRED


# --------------------------------------------------------------------------
# NPRED
# --------------------------------------------------------------------------
@pytest.mark.parametrize(
    "text",
    [
        "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND not_distance(p1, p2, 5))",
        "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND not_ordered(p1, p2))",
        # mixing positive and negative predicates stays NPRED
        "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND samepara(p1, p2) "
        "AND not_distance(p1, p2, 3))",
        # diffpos needs the permutation threads (see predicates module)
        "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'a' AND diffpos(p1, p2))",
    ],
)
def test_npred_queries(text):
    assert classify(text) is LanguageClass.NPRED


# --------------------------------------------------------------------------
# COMP
# --------------------------------------------------------------------------
@pytest.mark.parametrize(
    "text",
    [
        "EVERY p (p HAS 'a')",
        "SOME p (NOT p HAS 'a')",
        "SOME p (p HAS ANY)",
        "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND NOT distance(p1, p2, 0))",
        # OR branches sharing an externally bound variable
        "SOME p (p HAS 'a' OR p HAS 'b')",
        # negation of an open subquery
        "SOME p1 SOME p2 (p1 HAS 'a' AND NOT (p2 HAS 'b' AND ordered(p1, p2)))",
    ],
)
def test_comp_queries(text):
    assert classify(text) is LanguageClass.COMP


# --------------------------------------------------------------------------
# Hierarchy relation
# --------------------------------------------------------------------------
def test_can_evaluate_reflects_the_hierarchy():
    assert can_evaluate(LanguageClass.BOOL_NONEG, LanguageClass.BOOL)
    assert can_evaluate(LanguageClass.BOOL_NONEG, LanguageClass.COMP)
    assert can_evaluate(LanguageClass.PPRED, LanguageClass.NPRED)
    assert can_evaluate(LanguageClass.PPRED, LanguageClass.COMP)
    assert can_evaluate(LanguageClass.NPRED, LanguageClass.COMP)
    assert can_evaluate(LanguageClass.COMP, LanguageClass.COMP)

    assert not can_evaluate(LanguageClass.COMP, LanguageClass.NPRED)
    assert not can_evaluate(LanguageClass.NPRED, LanguageClass.PPRED)
    assert not can_evaluate(LanguageClass.BOOL, LanguageClass.PPRED)
    assert not can_evaluate(LanguageClass.PPRED, LanguageClass.BOOL)
