"""Tests for the query lexer."""

from __future__ import annotations

import pytest

from repro.exceptions import QuerySyntaxError
from repro.languages.lexer import TokenKind, TokenStream, tokenize


def kinds(text: str) -> list[TokenKind]:
    return [token.kind for token in tokenize(text)]


def values(text: str) -> list[str]:
    return [token.value for token in tokenize(text)]


def test_string_literals_are_unquoted():
    tokens = tokenize("'usability'")
    assert tokens[0].kind is TokenKind.STRING
    assert tokens[0].value == "usability"


def test_string_literal_with_escaped_quote():
    tokens = tokenize(r"'don\'t'")
    assert tokens[0].value == "don't"


def test_keywords_are_case_insensitive():
    assert values("and OR not Some EVERY has any")[:-1] == [
        "AND",
        "OR",
        "NOT",
        "SOME",
        "EVERY",
        "HAS",
        "ANY",
    ]
    assert all(
        kind is TokenKind.KEYWORD for kind in kinds("and OR not")[:-1]
    )


def test_identifiers_and_integers():
    tokens = tokenize("distance(p1, p2, 5)")
    assert [t.kind for t in tokens] == [
        TokenKind.IDENT,
        TokenKind.LPAREN,
        TokenKind.IDENT,
        TokenKind.COMMA,
        TokenKind.IDENT,
        TokenKind.COMMA,
        TokenKind.INTEGER,
        TokenKind.RPAREN,
        TokenKind.EOF,
    ]


def test_offsets_point_into_the_source():
    tokens = tokenize("'a' AND 'b'")
    assert tokens[0].offset == 0
    assert tokens[1].offset == 4
    assert tokens[2].offset == 8


def test_stream_ends_with_eof():
    assert kinds("")[-1] is TokenKind.EOF
    assert kinds("'a'")[-1] is TokenKind.EOF


def test_unexpected_character_raises_with_position():
    with pytest.raises(QuerySyntaxError) as excinfo:
        tokenize("'a' & 'b'")
    assert excinfo.value.position == 4


def test_token_stream_peek_accept_expect():
    stream = TokenStream("'a' AND 'b'")
    assert stream.peek().kind is TokenKind.STRING
    assert stream.accept(TokenKind.KEYWORD, "AND") is None
    assert stream.advance().value == "a"
    assert stream.expect(TokenKind.KEYWORD, "AND").value == "AND"
    assert stream.accept(TokenKind.STRING).value == "b"
    assert stream.at_end()


def test_token_stream_expect_failure_is_descriptive():
    stream = TokenStream("'a' 'b'")
    stream.advance()
    with pytest.raises(QuerySyntaxError):
        stream.expect(TokenKind.KEYWORD, "AND")
