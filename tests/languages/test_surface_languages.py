"""Tests for the BOOL / DIST / COMP language modules and their helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import QuerySemanticsError, QuerySyntaxError
from repro.languages import ast
from repro.languages.bool_lang import (
    bool_to_calculus,
    is_bool_noneg_query,
    is_bool_query,
    parse_bool,
    require_bool_noneg,
)
from repro.languages.comp_lang import (
    calculus_to_comp,
    comp_round_trip,
    comp_to_calculus,
    parse_comp,
    parse_comp_open,
)
from repro.languages.dist_lang import dist_to_calculus, is_dist_query, parse_dist
from repro.model import calculus as c


# --------------------------------------------------------------------------
# BOOL
# --------------------------------------------------------------------------
def test_parse_bool_accepts_the_grammar():
    node = parse_bool("'test' AND NOT 'usability' OR ANY")
    assert is_bool_query(node)


def test_parse_bool_rejects_comp_syntax():
    with pytest.raises(QuerySyntaxError):
        parse_bool("SOME p (p HAS 'a')")


def test_bool_to_calculus_matches_paper_example():
    # 'test' AND NOT 'usability'  (Section 4.1)
    query = bool_to_calculus("'test' AND NOT 'usability'")
    text = query.to_text()
    assert "hasToken" in text and "NOT" in text
    assert c.used_tokens(query.expr) == {"test", "usability"}


def test_bool_noneg_accepts_and_not_form():
    node = parse_bool("('a' AND NOT 'b') OR 'c'")
    assert is_bool_noneg_query(node)
    require_bool_noneg(node)


def test_bool_noneg_rejects_top_level_not():
    assert not is_bool_noneg_query(parse_bool("NOT 'a'"))
    with pytest.raises(QuerySemanticsError):
        require_bool_noneg(parse_bool("NOT 'a'"))


def test_bool_noneg_rejects_any_and_or_of_negation():
    assert not is_bool_noneg_query(parse_bool("'a' AND ANY"))
    assert not is_bool_noneg_query(parse_bool("'a' OR NOT 'b'"))
    assert not is_bool_noneg_query(parse_bool("NOT 'a' AND NOT 'b'"))


def test_is_bool_query_rejects_comp_constructs():
    assert not is_bool_query(parse_comp("SOME p (p HAS 'a')"))
    assert not is_bool_query(parse_dist("dist('a', 'b', 1)"))


# --------------------------------------------------------------------------
# DIST
# --------------------------------------------------------------------------
def test_parse_dist_accepts_bool_plus_dist():
    node = parse_dist("'a' AND dist('b', ANY, 2)")
    assert is_dist_query(node)


def test_dist_to_calculus_uses_distance_predicate():
    query = dist_to_calculus("dist('task', 'completion', 10)")
    assert c.used_predicates(query.expr) == {"distance"}


def test_parse_dist_rejects_quantifiers():
    with pytest.raises(QuerySyntaxError):
        parse_dist("SOME p (p HAS 'a')")


# --------------------------------------------------------------------------
# COMP
# --------------------------------------------------------------------------
def test_parse_comp_rejects_unbound_variables():
    with pytest.raises(QuerySemanticsError):
        parse_comp("p1 HAS 'a'")
    parse_comp_open("p1 HAS 'a'")  # the open variant allows them


def test_comp_expresses_the_paper_theorem_witnesses():
    theorem3 = parse_comp("SOME p1 (NOT p1 HAS 't1')")
    theorem5 = parse_comp(
        "SOME p1 SOME p2 (p1 HAS 't1' AND p2 HAS 't2' AND NOT distance(p1, p2, 0))"
    )
    assert isinstance(theorem3, ast.SomeQuery)
    assert isinstance(theorem5, ast.SomeQuery)


def test_comp_to_calculus_and_back_is_stable():
    text = (
        "SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'software' "
        "AND samepara(p1, p2) AND distance(p1, p2, 5))"
    )
    round_tripped = comp_round_trip(text)
    reparsed = parse_comp(round_tripped)
    assert reparsed.to_calculus_query().to_text() == comp_to_calculus(text).to_text()


def test_calculus_to_comp_covers_every_construct():
    expr = c.Forall(
        "p",
        c.Or(
            c.Not(c.HasToken("p", "a")),
            c.Exists(
                "q",
                c.And(c.HasPos("q"), c.PredicateApplication("ordered", ("p", "q"))),
            ),
        ),
    )
    comp_query = calculus_to_comp(c.CalculusQuery(expr))
    text = comp_query.to_text()
    assert "EVERY p" in text and "SOME q" in text and "ordered(p, q)" in text
    # The COMP query parses back and yields the same calculus text.
    assert parse_comp(text).to_calculus_query().to_text() == c.CalculusQuery(expr).to_text()
