"""Tests for the surface AST: free variables, measures, calculus translation."""

from __future__ import annotations

import pytest

from repro.exceptions import QuerySemanticsError
from repro.languages import ast
from repro.model import calculus as c


def test_free_and_bound_variables():
    node = ast.SomeQuery(
        "p1",
        ast.AndQuery(
            ast.VarHasToken("p1", "a"),
            ast.PredQuery("ordered", ("p1", "p2")),
        ),
    )
    assert node.free_variables() == {"p2"}
    assert node.bound_variables() == {"p1"}
    assert not node.is_closed()
    assert ast.SomeQuery("p2", node).is_closed()


def test_token_query_to_calculus_introduces_existential():
    expr = ast.TokenQuery("usability").to_calculus()
    assert isinstance(expr, c.Exists)
    assert isinstance(expr.operand, c.HasToken)
    assert expr.free_variables() == set()


def test_any_query_to_calculus():
    expr = ast.AnyQuery().to_calculus()
    assert isinstance(expr, c.Exists)
    assert isinstance(expr.operand, c.HasPos)


def test_var_has_token_translates_to_open_atom():
    expr = ast.VarHasToken("p", "a").to_calculus()
    assert expr == c.HasToken("p", "a")
    assert expr.free_variables() == {"p"}


def test_some_and_every_translate_to_quantifiers():
    some = ast.SomeQuery("p", ast.VarHasToken("p", "a")).to_calculus()
    every = ast.EveryQuery("p", ast.VarHasToken("p", "a")).to_calculus()
    assert isinstance(some, c.Exists)
    assert isinstance(every, c.Forall)


def test_dist_query_translation_includes_distance_predicate():
    expr = ast.DistQuery("a", "b", 4).to_calculus()
    names = {
        node.name
        for node in c.walk(expr)
        if isinstance(node, c.PredicateApplication)
    }
    assert names == {"distance"}
    tokens = c.used_tokens(expr)
    assert tokens == {"a", "b"}


def test_dist_query_with_any_omits_has_token():
    expr = ast.DistQuery(None, "b", 4).to_calculus()
    assert c.used_tokens(expr) == {"b"}


def test_fresh_variables_do_not_collide_with_user_variables():
    node = ast.AndQuery(
        ast.TokenQuery("a"),
        ast.SomeQuery("_q1", ast.VarHasToken("_q1", "b")),
    )
    expr = node.to_calculus()
    # Two different existentials must not reuse the user's variable name.
    bound = [n.var for n in c.walk(expr) if isinstance(n, c.Exists)]
    assert len(bound) == len(set(bound))


def test_to_calculus_query_requires_closed_query():
    with pytest.raises(QuerySemanticsError):
        ast.VarHasToken("p", "a").to_calculus_query()


def test_query_tokens_collects_all_literal_sources():
    node = ast.AndQuery(
        ast.TokenQuery("a"),
        ast.OrQuery(
            ast.VarHasToken("p", "b"),
            ast.DistQuery("c", None, 2),
        ),
    )
    assert ast.query_tokens(node) == {"a", "b", "c"}


def test_query_measures():
    node = ast.SomeQuery(
        "p1",
        ast.SomeQuery(
            "p2",
            ast.AndQuery(
                ast.AndQuery(
                    ast.VarHasToken("p1", "a"), ast.VarHasToken("p2", "b")
                ),
                ast.PredQuery("distance", ("p1", "p2"), (5,)),
            ),
        ),
    )
    assert ast.query_measures(node) == {"toks_Q": 2, "preds_Q": 1, "ops_Q": 4}


def test_dist_query_measures_counts_two_tokens_one_predicate():
    assert ast.query_measures(ast.DistQuery("a", "b", 1)) == {
        "toks_Q": 2,
        "preds_Q": 1,
        "ops_Q": 0,
    }


def test_to_text_round_trips_through_parser():
    from repro.languages.parser import LanguageLevel, QueryParser

    parser = QueryParser(LanguageLevel.COMP)
    original = parser.parse(
        "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND distance(p1, p2, 3)) "
        "OR NOT 'c'"
    )
    reparsed = parser.parse(original.to_text())
    assert reparsed == original
