"""Tests for the shared recursive-descent parser: precedence, levels, errors."""

from __future__ import annotations

import pytest

from repro.exceptions import QuerySemanticsError, QuerySyntaxError
from repro.languages import ast
from repro.languages.parser import LanguageLevel, QueryParser


def comp(text: str) -> ast.QueryNode:
    return QueryParser(LanguageLevel.COMP).parse(text)


def test_and_binds_tighter_than_or():
    node = comp("'a' OR 'b' AND 'c'")
    assert isinstance(node, ast.OrQuery)
    assert isinstance(node.right, ast.AndQuery)


def test_operators_are_left_associative():
    node = comp("'a' AND 'b' AND 'c'")
    assert isinstance(node, ast.AndQuery)
    assert isinstance(node.left, ast.AndQuery)
    assert node.right == ast.TokenQuery("c")


def test_not_binds_tighter_than_and():
    node = comp("NOT 'a' AND 'b'")
    assert isinstance(node, ast.AndQuery)
    assert isinstance(node.left, ast.NotQuery)


def test_parentheses_override_precedence():
    node = comp("('a' OR 'b') AND 'c'")
    assert isinstance(node, ast.AndQuery)
    assert isinstance(node.left, ast.OrQuery)


def test_double_negation_parses():
    node = comp("NOT NOT 'a'")
    assert isinstance(node, ast.NotQuery)
    assert isinstance(node.operand, ast.NotQuery)


def test_quantifiers_and_has():
    node = comp("SOME p1 (p1 HAS 'usability')")
    assert isinstance(node, ast.SomeQuery)
    assert node.var == "p1"
    assert node.operand == ast.VarHasToken("p1", "usability")

    node = comp("EVERY p (p HAS ANY)")
    assert isinstance(node, ast.EveryQuery)
    assert node.operand == ast.VarHasAny("p")


def test_quantifier_scope_is_the_following_unary_expression():
    node = comp("SOME p p HAS 'a' AND 'b'")
    # SOME binds only the next unary expression, so the AND is outside.
    assert isinstance(node, ast.AndQuery)
    assert isinstance(node.left, ast.SomeQuery)


def test_predicate_parsing_with_constants():
    node = comp("SOME p1 SOME p2 (p1 HAS 'a' AND distance(p1, p2, 7))")
    predicates = ast.query_predicates(node)
    assert predicates == [ast.PredQuery("distance", ("p1", "p2"), (7,))]


def test_unknown_predicate_rejected():
    with pytest.raises(QuerySemanticsError):
        comp("SOME p1 nosuchpredicate(p1)")


def test_predicate_arity_is_checked():
    with pytest.raises(Exception):
        comp("SOME p1 SOME p2 distance(p1, p2)")


def test_bare_identifiers_are_rejected():
    with pytest.raises(QuerySyntaxError):
        comp("usability")


def test_empty_query_rejected():
    with pytest.raises(QuerySyntaxError):
        comp("")
    with pytest.raises(QuerySyntaxError):
        comp("   ")


def test_trailing_garbage_rejected():
    with pytest.raises(QuerySyntaxError):
        comp("'a' 'b'")


def test_unbalanced_parentheses_rejected():
    with pytest.raises(QuerySyntaxError):
        comp("('a' AND 'b'")


def test_bool_level_rejects_comp_constructs():
    parser = QueryParser(LanguageLevel.BOOL)
    parser.parse("'a' AND NOT 'b' OR ANY")
    with pytest.raises(QuerySyntaxError):
        parser.parse("SOME p (p HAS 'a')")
    with pytest.raises(QuerySyntaxError):
        parser.parse("p HAS 'a'")
    with pytest.raises(QuerySyntaxError):
        parser.parse("dist('a', 'b', 1)")


def test_dist_level_allows_dist_but_not_quantifiers():
    parser = QueryParser(LanguageLevel.DIST)
    node = parser.parse("dist('a', ANY, 3)")
    assert node == ast.DistQuery("a", None, 3)
    with pytest.raises(QuerySyntaxError):
        parser.parse("SOME p (p HAS 'a')")


def test_dist_arguments_must_be_tokens_and_integer():
    parser = QueryParser(LanguageLevel.DIST)
    with pytest.raises(QuerySyntaxError):
        parser.parse("dist(p1, 'b', 3)")
    with pytest.raises(QuerySyntaxError):
        parser.parse("dist('a', 'b', 'c')")


def test_parse_closed_rejects_free_variables():
    parser = QueryParser(LanguageLevel.COMP)
    with pytest.raises(QuerySemanticsError):
        parser.parse_closed("p HAS 'a'")
    parser.parse_closed("SOME p (p HAS 'a')")


def test_predicate_constants_cannot_precede_variables():
    with pytest.raises(QuerySyntaxError):
        comp("SOME p1 SOME p2 distance(p1, 5, p2)")
