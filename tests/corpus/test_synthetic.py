"""Tests for the synthetic corpus generator (determinism, planted tokens)."""

from __future__ import annotations

import pytest

from repro.corpus.synthetic import (
    DEFAULT_QUERY_TOKENS,
    SyntheticSpec,
    generate_collection,
    generate_inex_like_collection,
)
from repro.exceptions import CorpusError


def small_spec(**overrides) -> SyntheticSpec:
    defaults = dict(
        num_nodes=30,
        tokens_per_node=50,
        vocabulary_size=100,
        query_tokens=("alpha", "beta"),
        query_token_document_frequency=1.0,
        query_token_positions_per_entry=4,
        seed=11,
    )
    defaults.update(overrides)
    return SyntheticSpec(**defaults)


def test_generation_is_deterministic_for_a_given_seed():
    first = generate_collection(small_spec())
    second = generate_collection(small_spec())
    for nid in first.node_ids():
        assert first.get(nid).tokens == second.get(nid).tokens


def test_different_seeds_give_different_collections():
    first = generate_collection(small_spec(seed=1))
    second = generate_collection(small_spec(seed=2))
    assert any(
        first.get(nid).tokens != second.get(nid).tokens for nid in first.node_ids()
    )


def test_requested_number_of_nodes_and_lengths():
    collection = generate_collection(small_spec())
    assert len(collection) == 30
    assert all(len(collection.get(nid)) == 50 for nid in collection.node_ids())


def test_query_tokens_planted_with_full_document_frequency():
    collection = generate_collection(small_spec())
    assert collection.document_frequency("alpha") == 30
    assert collection.document_frequency("beta") == 30


def test_positions_per_entry_is_respected():
    collection = generate_collection(small_spec())
    for nid in collection.node_ids():
        assert collection.get(nid).occurrence_count("alpha") == 4


def test_partial_document_frequency_plants_in_a_fraction_of_nodes():
    spec = small_spec(query_token_document_frequency=0.5, num_nodes=200, seed=3)
    collection = generate_collection(spec)
    df = collection.document_frequency("alpha")
    assert 60 <= df <= 140  # roughly half, generous tolerance


def test_structure_fields_are_populated():
    collection = generate_collection(small_spec())
    node = collection.get(0)
    assert node.paragraph_count() >= 1
    assert node.sentence_count() >= 1


def test_invalid_specs_are_rejected():
    with pytest.raises(CorpusError):
        small_spec(num_nodes=0)
    with pytest.raises(CorpusError):
        small_spec(query_token_document_frequency=0.0)
    with pytest.raises(CorpusError):
        small_spec(tokens_per_node=5, query_token_positions_per_entry=4)


def test_inex_like_collection_defaults():
    collection = generate_inex_like_collection(num_nodes=50, pos_per_entry=3)
    assert len(collection) == 50
    # Designated query tokens exist in the collection vocabulary.
    assert set(DEFAULT_QUERY_TOKENS) <= collection.vocabulary()


def test_inex_like_collection_grows_documents_to_fit_planted_tokens():
    collection = generate_inex_like_collection(
        num_nodes=10, tokens_per_node=10, pos_per_entry=5
    )
    # 8 query tokens x 5 occurrences would not fit in 10 tokens; the helper
    # grows the documents instead of failing.
    assert collection.max_positions_per_node() >= 5 * len(DEFAULT_QUERY_TOKENS)
