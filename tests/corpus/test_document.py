"""Tests for ContextNode: the Positions/Token model functions and statistics."""

from __future__ import annotations

import pytest

from repro.corpus.document import ContextNode, node_from_paragraphs
from repro.exceptions import CorpusError
from repro.model.positions import Position


@pytest.fixture
def node() -> ContextNode:
    return ContextNode.from_text(
        7, "Usability of a software measures usability of software"
    )


def test_positions_function_returns_all_offsets_in_order(node):
    assert [pos.offset for pos in node.positions()] == list(range(8))


def test_token_at_maps_positions_to_tokens(node):
    assert node.token_at(node.positions()[0]) == "usability"
    assert node.token_at(3) == "software"


def test_token_at_unknown_position_raises(node):
    with pytest.raises(CorpusError):
        node.token_at(99)


def test_positions_of_token(node):
    offsets = [pos.offset for pos in node.positions_of("usability")]
    assert offsets == [0, 5]
    assert node.positions_of("missing") == []


def test_contains_and_occurrence_count(node):
    assert node.contains("software")
    assert not node.contains("databases")
    assert node.occurrence_count("software") == 2
    assert node.occurrence_count("missing") == 0


def test_unique_token_count(node):
    # usability, of, a, software, measures
    assert node.unique_token_count() == 5


def test_term_frequency_uses_unique_token_normalisation(node):
    assert node.term_frequency("software") == pytest.approx(2 / 5)
    assert node.term_frequency("missing") == 0.0


def test_term_frequency_of_empty_node_is_zero():
    empty = ContextNode(3, ())
    assert empty.term_frequency("anything") == 0.0
    assert len(empty) == 0


def test_from_tokens_with_regular_structure():
    node = ContextNode.from_tokens(
        1, ["a", "b", "c", "d", "e", "f"], sentence_length=2, paragraph_length=3
    )
    assert [pos.sentence for pos in node.positions()] == [0, 0, 1, 1, 2, 2]
    assert [pos.paragraph for pos in node.positions()] == [0, 0, 0, 1, 1, 1]
    assert node.sentence_count() == 3
    assert node.paragraph_count() == 2


def test_node_from_paragraphs_sets_paragraph_boundaries():
    node = node_from_paragraphs(0, [["a", "b"], ["c"], ["d", "e", "f"]])
    assert [pos.paragraph for pos in node.positions()] == [0, 0, 1, 2, 2, 2]
    assert [pos.offset for pos in node.positions()] == [0, 1, 2, 3, 4, 5]


def test_node_from_paragraphs_sentence_length():
    node = node_from_paragraphs(0, [["a", "b", "c", "d"]], sentence_length=2)
    assert [pos.sentence for pos in node.positions()] == [0, 0, 1, 1]


def test_negative_node_id_rejected():
    with pytest.raises(CorpusError):
        ContextNode.from_tokens(-1, ["a"])


def test_non_increasing_offsets_rejected():
    from repro.corpus.tokenizer import TokenOccurrence

    with pytest.raises(CorpusError):
        ContextNode(
            0,
            (
                TokenOccurrence("a", Position(1)),
                TokenOccurrence("b", Position(1)),
            ),
        )


def test_metadata_is_preserved():
    node = ContextNode.from_text(0, "hello world", metadata={"title": "greeting"})
    assert node.metadata["title"] == "greeting"


def test_text_preview_truncates():
    node = ContextNode.from_tokens(0, [f"w{i}" for i in range(30)])
    preview = node.text_preview(max_tokens=5)
    assert preview.startswith("w0 w1 w2 w3 w4")
    assert preview.endswith("...")


def test_tokens_property_round_trips(node):
    assert node.tokens == [occ.token for occ in node]
