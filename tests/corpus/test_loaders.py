"""Tests for file loaders and markup stripping."""

from __future__ import annotations

import pytest

from repro.corpus.loaders import (
    collection_from_strings,
    load_directory,
    load_text_files,
    strip_markup,
)
from repro.exceptions import CorpusError


def test_strip_markup_removes_tags_keeps_text():
    text = "<book id='1'><author>Elina Rose</author> usability</book>"
    stripped = strip_markup(text)
    assert "book" not in stripped.split()  # the tag is gone
    assert "Elina" in stripped and "usability" in stripped


def test_strip_markup_handles_plain_text():
    assert strip_markup("no tags here") == "no tags here"


def test_load_text_files(tmp_path):
    first = tmp_path / "a.txt"
    second = tmp_path / "b.txt"
    first.write_text("alpha beta gamma", encoding="utf-8")
    second.write_text("delta epsilon", encoding="utf-8")
    collection = load_text_files([first, second])
    assert collection.node_ids() == [0, 1]
    assert collection.get(0).contains("alpha")
    assert collection.get(1).metadata["path"].endswith("b.txt")


def test_load_text_files_with_markup_stripping(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text("<p>usability of <b>software</b></p>", encoding="utf-8")
    collection = load_text_files([path], strip_tags=True)
    node = collection.get(0)
    assert node.contains("usability") and node.contains("software")
    assert not node.contains("p")


def test_load_missing_file_raises(tmp_path):
    with pytest.raises(CorpusError):
        load_text_files([tmp_path / "missing.txt"])


def test_load_directory_recursive(tmp_path):
    (tmp_path / "sub").mkdir()
    (tmp_path / "one.txt").write_text("first document", encoding="utf-8")
    (tmp_path / "sub" / "two.txt").write_text("second document", encoding="utf-8")
    collection = load_directory(tmp_path)
    assert len(collection) == 2


def test_load_directory_requires_matches(tmp_path):
    with pytest.raises(CorpusError):
        load_directory(tmp_path, pattern="*.none")
    with pytest.raises(CorpusError):
        load_directory(tmp_path / "does-not-exist")


def test_collection_from_strings():
    collection = collection_from_strings(["alpha beta", "<p>gamma</p>"], strip_tags=True)
    assert collection.get(0).contains("alpha")
    assert collection.get(1).contains("gamma")
    assert not collection.get(1).contains("p")
