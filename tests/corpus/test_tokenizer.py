"""Tests for the tokenizer: offsets, sentences, paragraphs, filters."""

from __future__ import annotations

import pytest

from repro.corpus.tokenizer import Tokenizer, default_tokenizer, make_stopword_filter


def test_offsets_are_consecutive_from_zero():
    occurrences = default_tokenizer().tokenize("one two three four")
    assert [occ.position.offset for occ in occurrences] == [0, 1, 2, 3]


def test_tokens_are_lowercased_by_default():
    assert default_tokenizer().tokens_only("Usability Of SOFTWARE") == [
        "usability",
        "of",
        "software",
    ]


def test_lowercasing_can_be_disabled():
    tokenizer = Tokenizer(lowercase=False)
    assert tokenizer.tokens_only("Usability Of") == ["Usability", "Of"]


def test_punctuation_is_not_a_token():
    tokens = default_tokenizer().tokens_only("alpha, beta; gamma: delta!")
    assert tokens == ["alpha", "beta", "gamma", "delta"]


def test_numbers_are_tokens():
    assert default_tokenizer().tokens_only("chapter 12 section 3") == [
        "chapter",
        "12",
        "section",
        "3",
    ]


def test_sentence_boundaries_advance_sentence_ordinal():
    occurrences = default_tokenizer().tokenize("first sentence. second one. third")
    sentences = [occ.position.sentence for occ in occurrences]
    assert sentences == [0, 0, 1, 1, 2]


def test_consecutive_sentence_terminators_do_not_create_empty_sentences():
    occurrences = default_tokenizer().tokenize("one... two")
    sentences = [occ.position.sentence for occ in occurrences]
    assert sentences == [0, 1]


def test_paragraphs_split_on_blank_lines():
    text = "alpha beta\n\ngamma delta\n\n\nepsilon"
    occurrences = default_tokenizer().tokenize(text)
    paragraphs = [occ.position.paragraph for occ in occurrences]
    assert paragraphs == [0, 0, 1, 1, 2]


def test_paragraph_end_terminates_sentence():
    text = "alpha beta\n\ngamma"
    occurrences = default_tokenizer().tokenize(text)
    assert occurrences[0].position.sentence == 0
    assert occurrences[2].position.sentence == 1


def test_empty_and_whitespace_text_produce_no_tokens():
    assert default_tokenizer().tokenize("") == []
    assert default_tokenizer().tokenize("   \n\n\t ") == []


def test_offsets_continue_across_paragraphs():
    occurrences = default_tokenizer().tokenize("a b\n\nc d")
    assert [occ.position.offset for occ in occurrences] == [0, 1, 2, 3]


def test_extra_token_chars_keep_hyphenated_words_together():
    tokenizer = Tokenizer(extra_token_chars="-")
    assert tokenizer.tokens_only("full-text search") == ["full-text", "search"]


def test_stopword_filter_drops_tokens_without_consuming_positions():
    tokenizer = Tokenizer(filters=[make_stopword_filter(["of", "the"])])
    occurrences = tokenizer.tokenize("usability of the software")
    assert [occ.token for occ in occurrences] == ["usability", "software"]
    assert [occ.position.offset for occ in occurrences] == [0, 1]


def test_custom_rewriting_filter():
    def crude_stemmer(token: str) -> str:
        return token[:-1] if token.endswith("s") else token

    tokenizer = Tokenizer(filters=[crude_stemmer])
    assert tokenizer.tokens_only("databases measures tokens") == [
        "database",
        "measure",
        "token",
    ]


def test_iter_tokens_is_lazy_and_matches_tokenize():
    tokenizer = default_tokenizer()
    text = "alpha beta. gamma\n\ndelta"
    assert list(tokenizer.iter_tokens(text)) == tokenizer.tokenize(text)


@pytest.mark.parametrize("text", ["word", "word.", ".word", "..word.."])
def test_single_word_always_has_offset_zero(text):
    occurrences = default_tokenizer().tokenize(text)
    assert len(occurrences) == 1
    assert occurrences[0].position.offset == 0
