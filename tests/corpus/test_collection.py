"""Tests for Collection: ordering, subsetting, statistics."""

from __future__ import annotations

import pytest

from repro.corpus import Collection, ContextNode
from repro.exceptions import CorpusError


@pytest.fixture
def collection() -> Collection:
    return Collection.from_texts(
        [
            "usability of software",
            "software testing",
            "databases and retrieval",
        ]
    )


def test_from_texts_assigns_consecutive_ids(collection):
    assert collection.node_ids() == [0, 1, 2]
    assert len(collection) == 3


def test_iteration_is_in_ascending_id_order():
    nodes = [
        ContextNode.from_tokens(5, ["a"]),
        ContextNode.from_tokens(1, ["b"]),
        ContextNode.from_tokens(3, ["c"]),
    ]
    collection = Collection.from_nodes(nodes)
    assert [node.node_id for node in collection] == [1, 3, 5]


def test_duplicate_node_ids_rejected():
    with pytest.raises(CorpusError):
        Collection.from_nodes(
            [ContextNode.from_tokens(1, ["a"]), ContextNode.from_tokens(1, ["b"])]
        )


def test_get_and_contains(collection):
    assert collection.get(1).contains("testing")
    assert 2 in collection
    assert 99 not in collection
    with pytest.raises(CorpusError):
        collection.get(99)


def test_subset_restricts_to_requested_ids(collection):
    subset = collection.subset([0, 2])
    assert subset.node_ids() == [0, 2]
    with pytest.raises(CorpusError):
        collection.subset([0, 42])


def test_filter_by_predicate(collection):
    filtered = collection.filter(lambda node: node.contains("software"))
    assert filtered.node_ids() == [0, 1]


def test_document_frequency(collection):
    assert collection.document_frequency("software") == 2
    assert collection.document_frequency("databases") == 1
    assert collection.document_frequency("missing") == 0


def test_vocabulary_and_token_counts(collection):
    vocab = collection.vocabulary()
    assert {"usability", "software", "testing", "databases"} <= vocab
    assert collection.total_token_count() == sum(
        len(collection.get(nid)) for nid in collection.node_ids()
    )


def test_max_positions_per_node(collection):
    assert collection.max_positions_per_node() == 3
    assert Collection.from_nodes([]).max_positions_per_node() == 0


def test_describe_summary(collection):
    summary = collection.describe()
    assert summary["nodes"] == 3
    assert summary["max_positions_per_node"] == 3
    assert summary["vocabulary"] == len(collection.vocabulary())


def test_from_named_texts_stores_titles():
    collection = Collection.from_named_texts({"doc-a": "alpha", "doc-b": "beta"})
    titles = [collection.get(nid).metadata["title"] for nid in collection.node_ids()]
    assert titles == ["doc-a", "doc-b"]
