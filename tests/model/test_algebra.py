"""Tests for the full-text algebra: well-formedness and materialising semantics."""

from __future__ import annotations

import pytest

from repro.corpus import Collection, ContextNode
from repro.exceptions import QuerySemanticsError
from repro.model.algebra import (
    AlgebraEvaluator,
    AlgebraQuery,
    Difference,
    HasPosRel,
    Intersect,
    Join,
    Project,
    SearchContextRel,
    Select,
    TokenRel,
    Union,
    expression_measures,
)
from repro.model.positions import Position


@pytest.fixture(scope="module")
def collection() -> Collection:
    return Collection.from_nodes(
        [
            ContextNode.from_tokens(0, ["test", "usability", "of", "software"]),
            ContextNode.from_tokens(1, ["test", "test", "software"]),
            ContextNode.from_tokens(2, ["usability"]),
        ]
    )


@pytest.fixture(scope="module")
def evaluator(collection) -> AlgebraEvaluator:
    return AlgebraEvaluator(collection)


# --------------------------------------------------------------------------
# Well-formedness
# --------------------------------------------------------------------------
def test_arity_computation():
    expr = Join(TokenRel("a"), TokenRel("b"))
    assert expr.arity() == 2
    assert Project(expr, (0,)).arity() == 1
    assert Select(expr, "distance", (0, 1), (5,)).arity() == 2


def test_projection_index_validation():
    with pytest.raises(QuerySemanticsError):
        Project(TokenRel("a"), (1,))


def test_selection_index_validation():
    with pytest.raises(QuerySemanticsError):
        Select(TokenRel("a"), "distance", (0, 1), (5,))


def test_set_operations_require_equal_arity():
    with pytest.raises(QuerySemanticsError):
        Union(TokenRel("a"), SearchContextRel())
    with pytest.raises(QuerySemanticsError):
        Difference(Join(TokenRel("a"), TokenRel("b")), TokenRel("a"))


def test_algebra_query_must_be_node_level():
    with pytest.raises(QuerySemanticsError):
        AlgebraQuery(TokenRel("a"))
    AlgebraQuery(Project(TokenRel("a"), ()))


def test_expression_measures():
    expr = Project(
        Select(Join(TokenRel("a"), TokenRel("b")), "ordered", (0, 1)), ()
    )
    measures = expression_measures(expr)
    assert measures == {
        "scans": 2,
        "joins": 1,
        "selects": 1,
        "set_operations": 0,
        "projections": 1,
    }


def test_to_text_renders_plan():
    expr = Project(Select(Join(TokenRel("a"), TokenRel("b")), "ordered", (0, 1)), ())
    text = expr.to_text()
    assert "R['a']" in text and "ordered" in text and "project" in text


# --------------------------------------------------------------------------
# Semantics (paper Section 2.3 examples)
# --------------------------------------------------------------------------
def test_base_relations(collection, evaluator):
    assert evaluator.evaluate(SearchContextRel()).node_ids() == [0, 1, 2]
    has_pos = evaluator.evaluate(HasPosRel())
    assert len(has_pos) == sum(len(collection.get(n)) for n in collection.node_ids())
    r_test = evaluator.evaluate(TokenRel("test"))
    assert r_test.node_ids() == [0, 1]
    assert evaluator.evaluate(TokenRel("missing")).node_ids() == []


def test_example_conjunction_of_tokens(evaluator):
    # pi_CNode(R_test |x| R_usability)
    query = AlgebraQuery(Project(Join(TokenRel("test"), TokenRel("usability")), ()))
    assert evaluator.evaluate_query(query) == [0]


def test_example_distance_selection(evaluator):
    # pi_CNode(sigma_distance(p1,p2,1)(R_test |x| R_software))
    query = AlgebraQuery(
        Project(
            Select(Join(TokenRel("test"), TokenRel("software")), "distance", (0, 1), (1,)),
            (),
        )
    )
    assert evaluator.evaluate_query(query) == [1]


def test_example_two_occurrences_and_negation(evaluator):
    # pi_CNode(sigma_diffpos(R_test |x| R_test)) |x| (SearchContext - pi_CNode(R_usability))
    two_tests = Project(
        Select(Join(TokenRel("test"), TokenRel("test")), "diffpos", (0, 1)), ()
    )
    without_usability = Difference(
        SearchContextRel(), Project(TokenRel("usability"), ())
    )
    query = AlgebraQuery(Join(two_tests, without_usability))
    assert evaluator.evaluate_query(query) == [1]


def test_union_and_intersection(evaluator):
    union = Union(Project(TokenRel("usability"), ()), Project(TokenRel("test"), ()))
    assert evaluator.evaluate(union).node_ids() == [0, 1, 2]
    intersect = Intersect(
        Project(TokenRel("usability"), ()), Project(TokenRel("test"), ())
    )
    assert evaluator.evaluate(intersect).node_ids() == [0]


def test_join_restricts_to_same_node(evaluator):
    joined = evaluator.evaluate(Join(TokenRel("test"), TokenRel("usability")))
    assert joined.node_ids() == [0]
    # Positions come from the same node only.
    for row in joined:
        assert isinstance(row[1], Position) and isinstance(row[2], Position)


def test_projection_reorders_attributes(evaluator):
    joined = Join(TokenRel("test"), TokenRel("software"))
    swapped = evaluator.evaluate(Project(joined, (1, 0)))
    original = evaluator.evaluate(joined)
    assert {(r[0], r[2], r[1]) for r in original} == set(swapped.rows)
