"""Tests for calculus normal forms and the Theorem 4 BOOL construction."""

from __future__ import annotations

import pytest

from repro.corpus import Collection, ContextNode
from repro.engine.bool_engine import BoolEngine
from repro.exceptions import TranslationError
from repro.index import InvertedIndex
from repro.model.calculus import (
    And,
    CalculusEvaluator,
    CalculusQuery,
    Exists,
    Forall,
    HasPos,
    HasToken,
    Not,
    Or,
    PredicateApplication,
)
from repro.model.normalize import calculus_to_bool, eliminate_forall, is_nnf, to_nnf


@pytest.fixture(scope="module")
def collection() -> Collection:
    vocabulary_docs = [
        ["t1"],
        ["t1", "t2"],
        ["t2", "t3", "t2"],
        ["t3"],
        [],
    ]
    return Collection.from_nodes(
        [ContextNode.from_tokens(i, tokens) for i, tokens in enumerate(vocabulary_docs)]
    )


VOCABULARY = ["t1", "t2", "t3"]


# --------------------------------------------------------------------------
# Negation normal form
# --------------------------------------------------------------------------
def test_double_negation_is_removed():
    expr = Not(Not(HasToken("p", "t1")))
    assert to_nnf(expr) == HasToken("p", "t1")


def test_de_morgan_over_and_or():
    expr = Not(And(HasToken("p", "a"), Or(HasToken("p", "b"), HasToken("p", "c"))))
    nnf = to_nnf(expr)
    assert is_nnf(nnf)
    assert isinstance(nnf, Or)


def test_negation_flips_quantifiers():
    expr = Not(Exists("p", HasToken("p", "a")))
    nnf = to_nnf(expr)
    assert isinstance(nnf, Forall)
    assert is_nnf(nnf)

    expr = Not(Forall("p", HasToken("p", "a")))
    assert isinstance(to_nnf(expr), Exists)


def test_nnf_preserves_semantics(collection):
    evaluator = CalculusEvaluator()
    expr = Not(
        And(
            Exists("p1", HasToken("p1", "t1")),
            Not(Exists("p2", HasToken("p2", "t2"))),
        )
    )
    original = evaluator.evaluate_query(CalculusQuery(expr), collection)
    normalised = evaluator.evaluate_query(CalculusQuery(to_nnf(expr)), collection)
    assert original == normalised


def test_is_nnf_detects_inner_negations():
    assert is_nnf(Not(HasToken("p", "a")))
    assert not is_nnf(Not(And(HasToken("p", "a"), HasToken("p", "b"))))


# --------------------------------------------------------------------------
# Universal quantifier elimination
# --------------------------------------------------------------------------
def test_eliminate_forall_preserves_semantics(collection):
    evaluator = CalculusEvaluator()
    expr = Forall("p", HasToken("p", "t2"))
    rewritten = eliminate_forall(expr)
    assert "Forall" not in [type(n).__name__ for n in _walk(rewritten)]
    assert evaluator.evaluate_query(
        CalculusQuery(expr), collection
    ) == evaluator.evaluate_query(CalculusQuery(rewritten), collection)


def _walk(expr):
    yield expr
    for child in expr.children():
        yield from _walk(child)


# --------------------------------------------------------------------------
# Theorem 4: BOOL completeness over a finite vocabulary
# --------------------------------------------------------------------------
THEOREM4_QUERIES = [
    # contains a token other than t1 (the Theorem 3 witness)
    Exists("p", Not(HasToken("p", "t1"))),
    # plain token
    Exists("p", HasToken("p", "t2")),
    # conjunction and disjunction of closed expressions
    And(Exists("p", HasToken("p", "t1")), Exists("q", HasToken("q", "t2"))),
    Or(Exists("p", HasToken("p", "t1")), Exists("q", HasToken("q", "t3"))),
    # negated token
    Not(Exists("p", HasToken("p", "t1"))),
    # every position holds t2 (vacuously true on the empty node)
    Forall("p", HasToken("p", "t2")),
    # node contains at least one position
    Exists("p", HasPos("p")),
    # disjunctive scope within one quantifier
    Exists("p", Or(HasToken("p", "t1"), HasToken("p", "t3"))),
    # conjunction of a positive and a negative literal in one scope
    Exists("p", And(HasToken("p", "t2"), Not(HasToken("p", "t1")))),
]


@pytest.mark.parametrize("expr", THEOREM4_QUERIES, ids=lambda e: e.to_text()[:60])
def test_theorem4_bool_translation_is_equivalent(expr, collection):
    query = CalculusQuery(expr)
    reference = CalculusEvaluator().evaluate_query(query, collection)
    bool_query = calculus_to_bool(query, VOCABULARY)
    engine = BoolEngine(InvertedIndex(collection))
    assert engine.evaluate(bool_query) == reference


def test_theorem4_rejects_position_predicates():
    query = CalculusQuery(
        Exists(
            "p1",
            Exists(
                "p2", PredicateApplication("distance", ("p1", "p2"), (1,))
            ),
        )
    )
    with pytest.raises(TranslationError):
        calculus_to_bool(query, VOCABULARY)


def test_theorem4_requires_nonempty_vocabulary():
    query = CalculusQuery(Exists("p", HasToken("p", "t1")))
    with pytest.raises(TranslationError):
        calculus_to_bool(query, [])


def test_theorem4_contradictory_scope_yields_empty_query(collection):
    # One position cannot hold two different tokens.
    query = CalculusQuery(
        Exists("p", And(HasToken("p", "t1"), HasToken("p", "t2")))
    )
    bool_query = calculus_to_bool(query, VOCABULARY)
    engine = BoolEngine(InvertedIndex(collection))
    assert engine.evaluate(bool_query) == []
