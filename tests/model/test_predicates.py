"""Tests for built-in predicates, their classification and advance hints.

The advance-hint tests check the defining property of positive predicates
(Section 5.5.2): when the predicate is false, the hinted advance never skips a
solution, and at least one hinted target strictly advances a position.
"""

from __future__ import annotations

import itertools

import pytest

from repro.exceptions import PredicateError
from repro.model.positions import Position
from repro.model.predicates import (
    NEGATION_PAIRS,
    DiffPosPredicate,
    DistancePredicate,
    FunctionPredicate,
    NegatedPredicate,
    NotDistancePredicate,
    NotOrderedPredicate,
    OrderedPredicate,
    Polarity,
    PredicateRegistry,
    SameParagraphPredicate,
    SamePosPredicate,
    SameSentencePredicate,
    WindowPredicate,
    default_registry,
    negation_name,
)


def P(offset: int, sentence: int = 0, paragraph: int = 0) -> Position:
    return Position(offset, sentence, paragraph)


# --------------------------------------------------------------------------
# Semantics
# --------------------------------------------------------------------------
def test_distance_counts_intervening_tokens_symmetrically():
    distance = DistancePredicate()
    assert distance([P(3), P(5)], [1])          # one intervening token
    assert not distance([P(3), P(5)], [0])
    assert distance([P(5), P(3)], [1])          # order does not matter
    assert distance([P(4), P(4)], [0])


def test_ordered_is_strict():
    ordered = OrderedPredicate()
    assert ordered([P(2), P(5)], [])
    assert not ordered([P(5), P(2)], [])
    assert not ordered([P(3), P(3)], [])


def test_samepara_and_samesentence_use_structure_fields():
    samepara = SameParagraphPredicate()
    samesent = SameSentencePredicate()
    assert samepara([P(1, paragraph=2), P(9, paragraph=2)], [])
    assert not samepara([P(1, paragraph=1), P(9, paragraph=2)], [])
    assert samesent([P(1, sentence=4), P(2, sentence=4)], [])
    assert not samesent([P(1, sentence=4), P(2, sentence=5)], [])


def test_diffpos_and_samepos_are_complementary():
    diffpos = DiffPosPredicate()
    samepos = SamePosPredicate()
    for a, b in itertools.product([P(1), P(2)], repeat=2):
        assert diffpos([a, b], []) != samepos([a, b], [])


def test_window_predicate_bounds_the_span():
    window = WindowPredicate()
    assert window([P(3), P(7)], [4])
    assert not window([P(3), P(8)], [4])
    three_way = WindowPredicate(num_positions=3)
    assert three_way([P(3), P(5), P(6)], [3])
    assert not three_way([P(3), P(5), P(9)], [3])
    with pytest.raises(PredicateError):
        WindowPredicate(num_positions=1)


def test_negative_predicates_are_negations_of_their_positive_counterparts():
    registry = default_registry()
    samples = [
        [P(1, 0, 0), P(4, 1, 1)],
        [P(4, 1, 1), P(1, 0, 0)],
        [P(2, 0, 0), P(2, 0, 0)],
        [P(0, 0, 0), P(9, 2, 1)],
    ]
    constants = {"distance": (2,), "not_distance": (2,)}
    for positive, negative in NEGATION_PAIRS.items():
        pos_pred = registry.get(positive)
        neg_pred = registry.get(negative)
        for sample in samples:
            assert pos_pred(sample, constants.get(positive, ())) != neg_pred(
                sample, constants.get(negative, ())
            )


# --------------------------------------------------------------------------
# Classification and registry
# --------------------------------------------------------------------------
def test_polarity_classification():
    registry = default_registry()
    assert registry.polarity_of("distance") is Polarity.POSITIVE
    assert registry.polarity_of("ordered") is Polarity.POSITIVE
    assert registry.polarity_of("samepara") is Polarity.POSITIVE
    assert registry.polarity_of("samepos") is Polarity.POSITIVE
    assert registry.polarity_of("not_distance") is Polarity.NEGATIVE
    assert registry.polarity_of("not_ordered") is Polarity.NEGATIVE
    assert registry.polarity_of("diffpos") is Polarity.NEGATIVE


def test_registry_lookup_and_duplicates():
    registry = PredicateRegistry([DistancePredicate()])
    assert "distance" in registry
    with pytest.raises(PredicateError):
        registry.register(DistancePredicate())
    registry.register(DistancePredicate(), replace=True)
    with pytest.raises(PredicateError):
        registry.get("unknown")


def test_registry_copy_is_independent():
    registry = default_registry()
    copy = registry.copy()
    copy.register(FunctionPredicate("custom", 1, lambda p, c: True))
    assert "custom" in copy
    assert "custom" not in registry


def test_negation_name_lookup():
    assert negation_name("distance") == "not_distance"
    assert negation_name("not_distance") == "distance"
    assert negation_name("diffpos") == "samepos"
    assert negation_name("window") is None


def test_arity_checking():
    distance = DistancePredicate()
    with pytest.raises(PredicateError):
        distance([P(1)], [3])
    with pytest.raises(PredicateError):
        distance([P(1), P(2)], [])


def test_function_predicate_and_generic_negation():
    even_gap = FunctionPredicate(
        "even_gap", 2, lambda pos, c: (pos[1].offset - pos[0].offset) % 2 == 0
    )
    assert even_gap([P(2), P(4)], [])
    negated = NegatedPredicate(even_gap)
    assert negated.polarity is Polarity.GENERAL
    assert not negated([P(2), P(4)], [])
    assert negated([P(2), P(5)], [])


# --------------------------------------------------------------------------
# Advance hints: the positive-predicate property
# --------------------------------------------------------------------------
POSITIVE_CASES = [
    (DistancePredicate(), (2,)),
    (OrderedPredicate(), ()),
    (SameParagraphPredicate(), ()),
    (SameSentencePredicate(), ()),
    (SamePosPredicate(), ()),
    (WindowPredicate(), (3,)),
]


def _structured(offset: int) -> Position:
    # Positions on a grid: sentence changes every 4 tokens, paragraph every 8.
    return Position(offset, sentence=offset // 4, paragraph=offset // 8)


@pytest.mark.parametrize("predicate, constants", POSITIVE_CASES)
def test_positive_hints_make_progress_and_do_not_skip_solutions(predicate, constants):
    universe = [_structured(offset) for offset in range(16)]
    for first, second in itertools.product(universe, repeat=2):
        if predicate([first, second], constants):
            continue
        hints = predicate.advance_hints([first, second], constants)
        current = [first, second]
        # At least one hint strictly advances its position.
        assert any(
            target > current[idx].offset for idx, target in hints.items()
        ), f"{predicate.name} gave no progressing hint at {first}, {second}"
        # No solution is skipped: for every hinted index, every candidate with
        # that position below the target (others held >= current) still fails.
        for idx, target in hints.items():
            for candidate in universe:
                if not current[idx].offset <= candidate.offset < target:
                    continue
                others = universe if idx == 1 else universe
                for other in others:
                    if other.offset < current[1 - idx].offset:
                        continue
                    pair = [None, None]
                    pair[idx] = candidate
                    pair[1 - idx] = other
                    assert not predicate(pair, constants), (
                        f"{predicate.name} hint skipped a solution at "
                        f"{pair} (hint {idx} -> {target})"
                    )


NEGATIVE_CASES = [
    (NotDistancePredicate(), (2,)),
    (NotOrderedPredicate(), ()),
    (DiffPosPredicate(), ()),
]


@pytest.mark.parametrize("predicate, constants", NEGATIVE_CASES)
def test_negative_advance_targets_strictly_progress(predicate, constants):
    universe = [_structured(offset) for offset in range(12)]
    for first, second in itertools.product(universe, repeat=2):
        if predicate([first, second], constants):
            continue
        for index in (0, 1):
            target = predicate.advance_target([first, second], constants, index)
            assert target > [first, second][index].offset


def test_not_distance_advance_target_reaches_a_solution():
    predicate = NotDistancePredicate()
    first, second = P(10), P(12)
    target = predicate.advance_target([first, second], (5,), 1)
    assert predicate([first, P(target)], (5,))
