"""Tests for FullTextRelation and its relational operations."""

from __future__ import annotations

import pytest

from repro.exceptions import EvaluationError
from repro.model.positions import Position
from repro.model.predicates import DistancePredicate, OrderedPredicate
from repro.model.relations import FullTextRelation


def P(offset: int) -> Position:
    return Position(offset)


@pytest.fixture
def left() -> FullTextRelation:
    return FullTextRelation.from_rows(
        1, [(1, P(0)), (1, P(4)), (2, P(2)), (3, P(7))]
    )


@pytest.fixture
def right() -> FullTextRelation:
    return FullTextRelation.from_rows(1, [(1, P(1)), (1, P(9)), (3, P(3))])


def test_row_arity_is_validated():
    with pytest.raises(EvaluationError):
        FullTextRelation.from_rows(1, [(1, P(0), P(1))])
    with pytest.raises(EvaluationError):
        FullTextRelation(-1)


def test_add_ignores_duplicates():
    relation = FullTextRelation(1)
    relation.add((1, P(0)))
    relation.add((1, P(0)))
    assert len(relation) == 1


def test_node_ids_are_sorted_and_distinct(left):
    assert left.node_ids() == [1, 2, 3]


def test_rows_for_node_sorted_by_positions(left):
    assert left.rows_for_node(1) == [(1, P(0)), (1, P(4))]


def test_join_is_per_node_cartesian_product(left, right):
    joined = left.join(right)
    assert joined.arity == 2
    # node 1: 2 x 2 = 4 tuples; node 3: 1 x 1; node 2 drops out.
    assert len(joined.rows_for_node(1)) == 4
    assert len(joined.rows_for_node(3)) == 1
    assert joined.node_ids() == [1, 3]


def test_join_with_arity_zero_acts_as_semijoin(left):
    nodes_only = FullTextRelation.from_rows(0, [(1,), (99,)])
    joined = left.join(nodes_only)
    assert joined.node_ids() == [1]
    assert joined.arity == 1


def test_projection_keeps_cnode_and_collapses_duplicates(left, right):
    joined = left.join(right)
    projected = joined.project([])
    assert projected.arity == 0
    assert projected.node_ids() == [1, 3]
    assert len(projected) == 2


def test_projection_can_reorder_attributes(left, right):
    joined = left.join(right)
    swapped = joined.project([1, 0])
    assert (1, P(1), P(0)) in swapped
    assert swapped.arity == 2


def test_projection_index_out_of_range(left):
    with pytest.raises(EvaluationError):
        left.project([3])


def test_selection_with_distance_predicate(left, right):
    joined = left.join(right)
    close = joined.select(DistancePredicate(), [0, 1], [1])
    assert (1, P(0), P(1)) in close
    assert (1, P(4), P(9)) not in close


def test_selection_with_ordered_predicate(left, right):
    joined = left.join(right)
    ordered = joined.select(OrderedPredicate(), [0, 1])
    assert (3, P(7), P(3)) not in ordered
    assert (1, P(0), P(1)) in ordered


def test_selection_index_out_of_range(left):
    with pytest.raises(EvaluationError):
        left.select(OrderedPredicate(), [0, 5])


def test_union_intersection_difference(left, right):
    union = left.union(right)
    assert set(union.node_ids()) == {1, 2, 3}
    assert len(union) == 7

    intersection = left.intersection(
        FullTextRelation.from_rows(1, [(1, P(0)), (9, P(9))])
    )
    assert list(intersection) == [(1, P(0))]

    difference = left.difference(FullTextRelation.from_rows(1, [(1, P(0))]))
    assert (1, P(0)) not in difference
    assert (1, P(4)) in difference


def test_set_operations_require_matching_arity(left):
    nodes_only = FullTextRelation.from_rows(0, [(1,)])
    with pytest.raises(EvaluationError):
        left.union(nodes_only)
    with pytest.raises(EvaluationError):
        left.intersection(nodes_only)
    with pytest.raises(EvaluationError):
        left.difference(nodes_only)


def test_score_accessors_without_scores(left):
    assert left.score_of((1, P(0))) == 0.0
    assert left.node_scores() == {1: 0.0, 2: 0.0, 3: 0.0}


def test_empty_relation():
    empty = FullTextRelation.empty(2)
    assert len(empty) == 0
    assert empty.node_ids() == []
    assert empty.join(empty).node_ids() == []
