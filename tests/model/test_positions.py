"""Tests for the Position value type."""

from __future__ import annotations

import pytest

from repro.model.positions import (
    Position,
    as_offset,
    intervening_tokens,
    positions_from_offsets,
)


def test_ordering_is_by_offset():
    assert Position(1) < Position(2)
    assert Position(3, sentence=0) > Position(2, sentence=9)
    assert sorted([Position(5), Position(1), Position(3)]) == [
        Position(1),
        Position(3),
        Position(5),
    ]


def test_equality_ignores_structure_fields():
    assert Position(4, sentence=1, paragraph=0) == Position(4, sentence=2, paragraph=3)
    assert hash(Position(4, 1, 0)) == hash(Position(4, 2, 3))


def test_comparison_with_plain_integers():
    assert Position(4) == 4
    assert Position(4) < 5
    assert int(Position(7)) == 7


def test_negative_values_rejected():
    with pytest.raises(ValueError):
        Position(-1)
    with pytest.raises(ValueError):
        Position(0, sentence=-1)


def test_shifted_preserves_structure():
    shifted = Position(3, sentence=1, paragraph=2).shifted(4)
    assert shifted.offset == 7
    assert shifted.sentence == 1
    assert shifted.paragraph == 2


def test_as_offset():
    assert as_offset(Position(9)) == 9
    assert as_offset(9) == 9


def test_positions_from_offsets_with_lookup_tables():
    sentence_of = [0, 0, 1, 1]
    paragraph_of = [0, 0, 0, 1]
    built = positions_from_offsets([0, 2, 3], sentence_of, paragraph_of)
    assert [(p.offset, p.sentence, p.paragraph) for p in built] == [
        (0, 0, 0),
        (2, 1, 0),
        (3, 1, 1),
    ]


def test_positions_from_offsets_defaults_to_zero_structure():
    built = positions_from_offsets([1, 5])
    assert all(p.sentence == 0 and p.paragraph == 0 for p in built)


@pytest.mark.parametrize(
    "first, second, expected",
    [
        (0, 1, 0),     # adjacent tokens: no intervening tokens
        (0, 2, 1),
        (5, 2, 2),     # order does not matter
        (3, 3, 0),     # same position
        (10, 20, 9),
    ],
)
def test_intervening_tokens(first, second, expected):
    assert intervening_tokens(Position(first), Position(second)) == expected
