"""Tests for the FTC <-> FTA translations (Theorem 1, both directions).

The key property tested here is *semantic equivalence on real data*: for a
battery of calculus queries, evaluating the query directly (reference
calculus evaluator) and evaluating its algebra translation (materialising
algebra evaluator) produce the same node sets -- and likewise for the reverse
translation.
"""

from __future__ import annotations

import pytest

from repro.corpus import Collection, ContextNode
from repro.exceptions import TranslationError
from repro.model.algebra import (
    AlgebraEvaluator,
    AlgebraQuery,
    Difference,
    Join,
    Project,
    SearchContextRel,
    Select,
    TokenRel,
    Union,
)
from repro.model.calculus import (
    And,
    CalculusEvaluator,
    CalculusQuery,
    Exists,
    Forall,
    HasPos,
    HasToken,
    Not,
    Or,
    PredicateApplication,
)
from repro.model.translation import (
    algebra_query_to_calculus,
    algebra_to_calculus,
    calculus_query_to_algebra,
    calculus_to_algebra,
    substitute_variables,
)


@pytest.fixture(scope="module")
def collection() -> Collection:
    return Collection.from_nodes(
        [
            ContextNode.from_tokens(0, ["test", "usability", "of", "software"]),
            ContextNode.from_tokens(1, ["test", "test", "software"]),
            ContextNode.from_tokens(2, ["usability", "software"]),
            ContextNode.from_tokens(3, ["other", "words"]),
            ContextNode.from_tokens(4, []),
        ]
    )


CALCULUS_QUERIES = [
    # simple token
    Exists("p", HasToken("p", "usability")),
    # conjunction of closed sub-expressions
    And(
        Exists("p1", HasToken("p1", "test")),
        Exists("p2", HasToken("p2", "software")),
    ),
    # disjunction
    Or(
        Exists("p1", HasToken("p1", "usability")),
        Exists("p2", HasToken("p2", "other")),
    ),
    # negation of a token
    Not(Exists("p", HasToken("p", "test"))),
    # token with distance predicate (shared-variable conjunction)
    Exists(
        "p1",
        And(
            HasToken("p1", "test"),
            Exists(
                "p2",
                And(
                    HasToken("p2", "software"),
                    PredicateApplication("distance", ("p1", "p2"), (1,)),
                ),
            ),
        ),
    ),
    # two occurrences of the same token
    Exists(
        "p1",
        And(
            HasToken("p1", "test"),
            Exists(
                "p2",
                And(HasToken("p2", "test"), PredicateApplication("diffpos", ("p1", "p2"))),
            ),
        ),
    ),
    # negation inside a quantifier (Theorem 3 witness query)
    Exists("p", Not(HasToken("p", "test"))),
    # universal quantification
    Forall("p", HasToken("p", "test")),
    # ANY
    Exists("p", HasPos("p")),
    # conjunction with an unused quantified variable
    Exists("p1", And(HasToken("p1", "usability"), Exists("p2", HasPos("p2")))),
    # nested boolean structure with shared variables inside one scope
    Exists(
        "p1",
        And(
            HasToken("p1", "software"),
            Or(HasToken("p1", "software"), HasToken("p1", "usability")),
        ),
    ),
]


@pytest.mark.parametrize("expr", CALCULUS_QUERIES, ids=lambda e: e.to_text()[:60])
def test_calculus_to_algebra_preserves_semantics(expr, collection):
    query = CalculusQuery(expr)
    reference = CalculusEvaluator().evaluate_query(query, collection)
    algebra_query = calculus_query_to_algebra(query)
    translated = AlgebraEvaluator(collection).evaluate_query(algebra_query)
    assert translated == reference


ALGEBRA_QUERIES = [
    AlgebraQuery(Project(TokenRel("usability"), ())),
    AlgebraQuery(Project(Join(TokenRel("test"), TokenRel("software")), ())),
    AlgebraQuery(
        Project(
            Select(Join(TokenRel("test"), TokenRel("software")), "distance", (0, 1), (1,)),
            (),
        )
    ),
    AlgebraQuery(
        Union(Project(TokenRel("usability"), ()), Project(TokenRel("other"), ()))
    ),
    AlgebraQuery(
        Difference(SearchContextRel(), Project(TokenRel("test"), ()))
    ),
    AlgebraQuery(
        Join(
            Project(
                Select(Join(TokenRel("test"), TokenRel("test")), "diffpos", (0, 1)), ()
            ),
            Difference(SearchContextRel(), Project(TokenRel("usability"), ())),
        )
    ),
]


@pytest.mark.parametrize("query", ALGEBRA_QUERIES, ids=lambda q: q.to_text()[:60])
def test_algebra_to_calculus_preserves_semantics(query, collection):
    reference = AlgebraEvaluator(collection).evaluate_query(query)
    calculus_query = algebra_query_to_calculus(query)
    translated = CalculusEvaluator().evaluate_query(calculus_query, collection)
    assert translated == reference


@pytest.mark.parametrize("expr", CALCULUS_QUERIES, ids=lambda e: e.to_text()[:60])
def test_round_trip_calculus_algebra_calculus(expr, collection):
    query = CalculusQuery(expr)
    reference = CalculusEvaluator().evaluate_query(query, collection)
    once = calculus_query_to_algebra(query)
    back = algebra_query_to_calculus(once)
    again = CalculusEvaluator().evaluate_query(back, collection)
    assert again == reference


# --------------------------------------------------------------------------
# Structural details
# --------------------------------------------------------------------------
def test_translation_tracks_free_variable_order():
    expr = And(HasToken("x", "test"), HasToken("y", "software"))
    translated = calculus_to_algebra(expr)
    assert set(translated.variables) == {"x", "y"}
    assert translated.expr.arity() == 2


def test_predicate_only_expression_uses_haspos_base():
    translated = calculus_to_algebra(
        PredicateApplication("distance", ("a", "b"), (3,))
    )
    assert translated.expr.arity() == 2
    assert translated.variables == ["a", "b"]


def test_algebra_to_calculus_rejects_duplicating_projection():
    duplicated = Project(Join(TokenRel("a"), TokenRel("b")), (0, 0))
    with pytest.raises(TranslationError):
        algebra_to_calculus(duplicated)


def test_algebra_query_to_calculus_rejects_open_expressions():
    with pytest.raises(TranslationError):
        # Bypass AlgebraQuery's own arity check by translating the expression
        # directly and wrapping the error path.
        expr, variables = algebra_to_calculus(TokenRel("a"))
        if variables:
            raise TranslationError("open expression")


def test_algebra_to_calculus_generates_distinct_variables():
    expr, variables = algebra_to_calculus(Join(TokenRel("a"), TokenRel("b")))
    assert len(variables) == 2
    assert len(set(variables)) == 2


def test_substitute_variables_renames_free_only():
    expr = Exists("p", And(HasToken("p", "a"), HasToken("q", "b")))
    renamed = substitute_variables(expr, {"q": "r"})
    assert renamed.free_variables() == {"r"}
    with pytest.raises(TranslationError):
        substitute_variables(expr, {"q": "p"})  # would be captured
