"""Tests for the full-text calculus: structure, safety, reference semantics."""

from __future__ import annotations

import pytest

from repro.corpus import Collection, ContextNode
from repro.exceptions import QuerySemanticsError
from repro.model.calculus import (
    And,
    CalculusEvaluator,
    CalculusQuery,
    Exists,
    Forall,
    HasPos,
    HasToken,
    Not,
    Or,
    PredicateApplication,
    conjunction,
    disjunction,
    query_measures,
    token_exists,
    used_predicates,
    used_tokens,
    validate_predicates,
    walk,
)


@pytest.fixture(scope="module")
def collection() -> Collection:
    return Collection.from_nodes(
        [
            ContextNode.from_tokens(0, ["test", "usability", "of", "software"]),
            ContextNode.from_tokens(1, ["test", "test", "software"]),
            ContextNode.from_tokens(2, ["usability"]),
            ContextNode.from_tokens(3, []),
        ]
    )


@pytest.fixture(scope="module")
def evaluator() -> CalculusEvaluator:
    return CalculusEvaluator()


# --------------------------------------------------------------------------
# Structure
# --------------------------------------------------------------------------
def test_free_variables():
    expr = And(HasToken("p1", "test"), Exists("p2", HasToken("p2", "usability")))
    assert expr.free_variables() == {"p1"}
    assert Exists("p1", expr).free_variables() == set()


def test_query_requires_closed_expression():
    with pytest.raises(QuerySemanticsError):
        CalculusQuery(HasToken("p1", "test"))
    CalculusQuery(token_exists("test", "p1"))  # closed: fine


def test_query_measures_counts_tokens_predicates_operations():
    expr = Exists(
        "p1",
        And(
            HasToken("p1", "test"),
            Exists(
                "p2",
                And(
                    HasToken("p2", "usability"),
                    PredicateApplication("distance", ("p1", "p2"), (5,)),
                ),
            ),
        ),
    )
    measures = query_measures(expr)
    assert measures == {"toks_Q": 2, "preds_Q": 1, "ops_Q": 4}


def test_used_tokens_and_predicates():
    expr = And(
        token_exists("a", "p1"),
        Exists("p2", PredicateApplication("ordered", ("p2", "p2"))),
    )
    assert used_tokens(expr) == {"a"}
    assert used_predicates(expr) == {"ordered"}


def test_validate_predicates_checks_registry_and_arity():
    validate_predicates(
        Exists("p", PredicateApplication("distance", ("p", "p"), (3,)))
    )
    with pytest.raises(Exception):
        validate_predicates(Exists("p", PredicateApplication("nope", ("p",), ())))


def test_conjunction_disjunction_builders():
    parts = [token_exists(tok, f"p{i}") for i, tok in enumerate("abc")]
    assert query_measures(conjunction(*parts))["ops_Q"] == 5  # 3 Exists + 2 And
    assert query_measures(disjunction(*parts))["ops_Q"] == 5
    with pytest.raises(QuerySemanticsError):
        conjunction()


def test_walk_visits_every_node():
    expr = Or(Not(token_exists("a", "p")), token_exists("b", "q"))
    kinds = [type(node).__name__ for node in walk(expr)]
    assert kinds.count("Exists") == 2
    assert "Not" in kinds and "Or" in kinds


def test_to_text_renderings_are_informative():
    expr = Forall("p", Not(HasToken("p", "x")))
    text = CalculusQuery(expr).to_text()
    assert "FORALL p" in text and "hasToken(p, 'x')" in text


# --------------------------------------------------------------------------
# Reference semantics
# --------------------------------------------------------------------------
def test_simple_token_query(collection, evaluator):
    query = CalculusQuery(token_exists("usability", "p"))
    assert evaluator.evaluate_query(query, collection) == [0, 2]


def test_conjunction_of_tokens(collection, evaluator):
    query = CalculusQuery(
        And(token_exists("test", "p1"), token_exists("usability", "p2"))
    )
    assert evaluator.evaluate_query(query, collection) == [0]


def test_negation(collection, evaluator):
    query = CalculusQuery(Not(token_exists("usability", "p")))
    assert evaluator.evaluate_query(query, collection) == [1, 3]


def test_distance_predicate(collection, evaluator):
    expr = Exists(
        "p1",
        And(
            HasToken("p1", "test"),
            Exists(
                "p2",
                And(
                    HasToken("p2", "software"),
                    PredicateApplication("distance", ("p1", "p2"), (1,)),
                ),
            ),
        ),
    )
    # node 1: "test test software" -> distance(test@1, software@2) = 0 <= 1.
    # node 0: test@0 ... software@3 -> two intervening tokens, fails.
    assert evaluator.evaluate_query(CalculusQuery(expr), collection) == [1]


def test_two_occurrences_with_diffpos(collection, evaluator):
    expr = Exists(
        "p1",
        And(
            HasToken("p1", "test"),
            Exists(
                "p2",
                And(
                    HasToken("p2", "test"),
                    PredicateApplication("diffpos", ("p1", "p2")),
                ),
            ),
        ),
    )
    assert evaluator.evaluate_query(CalculusQuery(expr), collection) == [1]


def test_universal_quantification(collection, evaluator):
    # Every position holds 'test': true for the empty node and for no others.
    query = CalculusQuery(Forall("p", HasToken("p", "test")))
    assert evaluator.evaluate_query(query, collection) == [3]


def test_any_token_via_haspos(collection, evaluator):
    query = CalculusQuery(Exists("p", HasPos("p")))
    assert evaluator.evaluate_query(query, collection) == [0, 1, 2]


def test_paper_example_token_and_not_token(collection, evaluator):
    # Contains two occurrences of 'test' and does not contain 'usability'.
    expr = Exists(
        "p1",
        And(
            HasToken("p1", "test"),
            And(
                Exists(
                    "p2",
                    And(
                        HasToken("p2", "test"),
                        PredicateApplication("diffpos", ("p1", "p2")),
                    ),
                ),
                Forall("p3", Not(HasToken("p3", "usability"))),
            ),
        ),
    )
    assert evaluator.evaluate_query(CalculusQuery(expr), collection) == [1]


def test_unbound_variable_raises(collection, evaluator):
    node = collection.get(0)
    with pytest.raises(QuerySemanticsError):
        evaluator.evaluate_on_node(HasToken("p", "test"), node)


def test_satisfying_bindings_enumerates_assignments(collection, evaluator):
    node = collection.get(1)  # test test software
    expr = HasToken("p", "test")
    bindings = list(evaluator.satisfying_bindings(expr, node))
    assert sorted(b["p"].offset for b in bindings) == [0, 1]


def test_quantifier_shadowing_restores_outer_binding(collection, evaluator):
    node = collection.get(0)
    # ∃p (hasToken(p,'test') ∧ ∃p (hasToken(p,'software')) ∧ hasToken(p,'test'))
    expr = Exists(
        "p",
        And(
            HasToken("p", "test"),
            And(Exists("p", HasToken("p", "software")), HasToken("p", "test")),
        ),
    )
    assert evaluator.evaluate_on_node(expr, node)
