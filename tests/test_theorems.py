"""The paper's formal results, exercised as executable tests.

* Theorem 1 (FTC ≡ FTA) is covered extensively in
  ``tests/model/test_translation.py``; a summary round-trip is repeated here.
* Theorem 2 (TF-IDF preservation) is covered in
  ``tests/scoring/test_tfidf.py``.
* Theorem 3: BOOL cannot distinguish the witness documents CN1/CN2 that the
  COMP query "contains a token other than t1" separates.
* Theorem 4: with a finite token universe and ``Preds = ∅``, calculus queries
  translate into equivalent BOOL queries (constructive check).
* Theorem 5: DIST cannot distinguish the witness documents that the COMP
  query "t1 and t2 not adjacent" separates.
* Theorem 6: every calculus query translates into an equivalent COMP query.
"""

from __future__ import annotations

import itertools

import pytest

from repro import FullTextEngine
from repro.index import InvertedIndex
from repro.languages import (
    calculus_to_comp,
    parse_bool,
    parse_comp,
    parse_dist,
)
from repro.languages import ast
from repro.model.calculus import (
    And,
    CalculusEvaluator,
    CalculusQuery,
    Exists,
    Forall,
    HasPos,
    HasToken,
    Not,
    Or,
    PredicateApplication,
)
from repro.model.normalize import calculus_to_bool
from repro.model.translation import algebra_query_to_calculus, calculus_query_to_algebra


# --------------------------------------------------------------------------
# Theorem 1 summary round-trip
# --------------------------------------------------------------------------
def test_theorem1_round_trip_on_witness_data(theorem5_collection):
    expr = Exists(
        "p1",
        And(
            HasToken("p1", "t1"),
            Exists(
                "p2",
                And(
                    HasToken("p2", "t2"),
                    Not(PredicateApplication("distance", ("p1", "p2"), (0,))),
                ),
            ),
        ),
    )
    query = CalculusQuery(expr)
    oracle = CalculusEvaluator().evaluate_query(query, theorem5_collection)
    algebra = calculus_query_to_algebra(query)
    back = algebra_query_to_calculus(algebra)
    assert CalculusEvaluator().evaluate_query(back, theorem5_collection) == oracle == [2]


# --------------------------------------------------------------------------
# Theorem 3: BOOL is incomplete
# --------------------------------------------------------------------------
THEOREM3_COMP_QUERY = "SOME p (NOT p HAS 't1')"


def test_theorem3_comp_query_separates_the_witness_documents(theorem3_collection):
    engine = FullTextEngine.from_collection(theorem3_collection)
    assert engine.search(THEOREM3_COMP_QUERY).node_ids == [2]


def _bool_queries_over(tokens: list[str], depth: int):
    """Enumerate small BOOL queries over ``tokens`` (plus ANY), up to ``depth``."""
    atoms: list[ast.QueryNode] = [ast.TokenQuery(tok) for tok in tokens]
    atoms.append(ast.AnyQuery())
    current = list(atoms)
    for _ in range(depth):
        extended = list(current)
        for left, right in itertools.product(atoms, current):
            extended.append(ast.AndQuery(left, right))
            extended.append(ast.OrQuery(left, right))
        for operand in current:
            extended.append(ast.NotQuery(operand))
        current = extended
    return current


def test_theorem3_no_small_bool_query_over_its_tokens_separates_cn2_from_cn1(
    theorem3_collection,
):
    """Every BOOL query using only the token t1 (the token named by the
    calculus query) returns CN1 and CN2 together or not at all."""
    index = InvertedIndex(theorem3_collection)
    from repro.engine.bool_engine import BoolEngine

    engine = BoolEngine(index)
    for query in _bool_queries_over(["t1"], depth=2):
        result = set(engine.evaluate(query))
        assert result != {2}, f"{query.to_text()} unexpectedly separates CN2"


# --------------------------------------------------------------------------
# Theorem 4: BOOL completeness over a finite token universe
# --------------------------------------------------------------------------
def test_theorem4_construction_agrees_with_comp_on_finite_vocabulary(
    theorem3_collection,
):
    vocabulary = ["t1", "t2"]
    comp_query = parse_comp(THEOREM3_COMP_QUERY)
    calculus = comp_query.to_calculus_query()
    bool_query = calculus_to_bool(calculus, vocabulary)

    engine = FullTextEngine.from_collection(theorem3_collection)
    assert engine.search(bool_query).node_ids == engine.search(comp_query).node_ids


# --------------------------------------------------------------------------
# Theorem 5: DIST is incomplete
# --------------------------------------------------------------------------
THEOREM5_COMP_QUERY = (
    "SOME p1 SOME p2 (p1 HAS 't1' AND p2 HAS 't2' AND NOT distance(p1, p2, 0))"
)
THEOREM5_NPRED_QUERY = (
    "SOME p1 SOME p2 (p1 HAS 't1' AND p2 HAS 't2' AND not_distance(p1, p2, 0))"
)


def test_theorem5_comp_and_npred_queries_separate_the_witness_documents(
    theorem5_collection,
):
    engine = FullTextEngine.from_collection(theorem5_collection)
    assert engine.search(THEOREM5_COMP_QUERY).node_ids == [2]
    assert engine.search(THEOREM5_NPRED_QUERY).node_ids == [2]


def _dist_queries_over(tokens: list[str], depth: int):
    atoms: list[ast.QueryNode] = [ast.TokenQuery(tok) for tok in tokens]
    atoms.append(ast.AnyQuery())
    for first, second in itertools.product(tokens + [None], repeat=2):
        for limit in (0, 1, 2, 5):
            atoms.append(ast.DistQuery(first, second, limit))
    current = list(atoms)
    for _ in range(depth):
        extended = list(current)
        for left, right in itertools.product(atoms, current):
            extended.append(ast.AndQuery(left, right))
            extended.append(ast.OrQuery(left, right))
        for operand in current:
            extended.append(ast.NotQuery(operand))
        current = extended
    return current


def test_theorem5_no_small_dist_query_separates_cn2_from_cn1(theorem5_collection):
    """Every small DIST query over {t1, t2} returns both witnesses or neither
    (or includes CN1), never exactly CN2 -- the calculus query above does."""
    from repro.engine.naive_engine import NaiveCompEngine

    index = InvertedIndex(theorem5_collection)
    engine = NaiveCompEngine(index)
    for query in _dist_queries_over(["t1", "t2"], depth=1):
        result = set(engine.evaluate(query))
        assert result != {2}, f"{query.to_text()} unexpectedly separates CN2"


# --------------------------------------------------------------------------
# Theorem 6: COMP is complete
# --------------------------------------------------------------------------
THEOREM6_CALCULUS_QUERIES = [
    CalculusQuery(Exists("p", Not(HasToken("p", "t1")))),
    CalculusQuery(Forall("p", Or(HasToken("p", "t1"), HasToken("p", "t2")))),
    CalculusQuery(
        Exists(
            "p1",
            And(
                HasToken("p1", "t1"),
                Exists(
                    "p2",
                    And(
                        HasToken("p2", "t2"),
                        Not(PredicateApplication("distance", ("p1", "p2"), (0,))),
                    ),
                ),
            ),
        )
    ),
    CalculusQuery(Exists("p", HasPos("p"))),
]


@pytest.mark.parametrize(
    "query", THEOREM6_CALCULUS_QUERIES, ids=lambda q: q.to_text()[:50]
)
def test_theorem6_calculus_to_comp_preserves_semantics(query, theorem5_collection):
    oracle = CalculusEvaluator().evaluate_query(query, theorem5_collection)
    comp_query = calculus_to_comp(query)
    engine = FullTextEngine.from_collection(theorem5_collection)
    assert engine.search(comp_query).node_ids == oracle
    # ... and the COMP text parses back to the same semantics.
    reparsed = parse_comp(comp_query.to_text())
    assert engine.search(reparsed).node_ids == oracle


# --------------------------------------------------------------------------
# Sanity: the surface languages really are nested (BOOL ⊂ DIST ⊂ COMP)
# --------------------------------------------------------------------------
def test_language_nesting():
    text = "'t1' AND NOT 't2'"
    assert parse_bool(text) == parse_dist(text) == parse_comp(text)
    dist_text = "dist('t1', 't2', 3)"
    assert parse_dist(dist_text) == parse_comp(dist_text)
    with pytest.raises(Exception):
        parse_bool(dist_text)
