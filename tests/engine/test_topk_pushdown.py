"""Unit tests of the score-bounded top-k pushdown (``repro.engine.topk``).

The cross-layer exactness matrix (engines x access modes x scorers x shard
counts x live/static) lives in ``tests/cluster/test_topk_equivalence.py``;
this module pins the building blocks:

* :func:`check_top_k` validation, uniformly raised at every entry point;
* :class:`TopKCollector` heap semantics, pruning and its exactness on
  adversarial score/id streams;
* the scoring models' ``score_upper_bound`` contract
  (``bound >= document_score`` for every node, any query);
* executor-level invariants: complete ``node_ids`` under pruning, partial
  ``scores``, and that pruning actually skips document scores.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import FullTextEngine
from repro.corpus import Collection, ContextNode
from repro.core.query import parse_query
from repro.engine.executor import Executor
from repro.engine.topk import TopKCollector, check_top_k
from repro.index import InvertedIndex
from repro.scoring.base import ScoringModel, get_model

TOKENS = ["alpha", "beta", "gamma", "delta"]


@pytest.fixture(scope="module")
def collection() -> Collection:
    texts = [
        "alpha beta gamma software",
        "beta beta gamma usability",
        "alpha alpha alpha beta",
        "delta gamma beta alpha delta",
        "software usability and testing",
        "alpha delta delta gamma beta alpha",
        "gamma gamma gamma",
        "beta alpha",
    ]
    return Collection.from_texts(texts, name="topk-unit")


@pytest.fixture(scope="module")
def index(collection) -> InvertedIndex:
    return InvertedIndex(collection)


# ------------------------------------------------------------- check_top_k
@pytest.mark.parametrize("bad", [0, -1, -100])
def test_check_top_k_rejects_non_positive(bad):
    with pytest.raises(ValueError):
        check_top_k(bad)


@pytest.mark.parametrize("bad", [1.5, "3", True])
def test_check_top_k_rejects_non_integers(bad):
    with pytest.raises(ValueError):
        check_top_k(bad)


def test_check_top_k_passes_none_and_positive():
    assert check_top_k(None) is None
    assert check_top_k(7) == 7


def test_validation_is_uniform_across_entry_points(collection):
    single = FullTextEngine.from_collection(collection, scoring="tfidf")
    sharded = FullTextEngine.from_collection(
        collection, scoring="tfidf", shards=2
    )
    for engine in (single, sharded):
        with pytest.raises(ValueError):
            engine.search("'alpha'", top_k=0)
        with pytest.raises(ValueError):
            engine.search_many(["'alpha'"], top_k=-3)
    sharded.close()


def test_cli_rejects_non_positive_top_k(capsys):
    from repro.cli import build_argument_parser

    parser = build_argument_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["search", "index.json", "'alpha'", "--top-k", "0"])
    assert "must be >= 1" in capsys.readouterr().err


# ------------------------------------------------------------ TopKCollector
class _FixedScores(ScoringModel):
    """A deterministic model with separately controllable upper bounds."""

    name = "fixed"

    def __init__(self, scores: dict[int, float], bounds: dict[int, float]):
        self._scores = scores
        self._bounds = bounds
        self.score_calls = 0

    def document_score(self, node_id: int) -> float:
        self.score_calls += 1
        return self._scores[node_id]

    def score_upper_bound(self, node_id: int) -> float:
        return self._bounds[node_id]


def test_collector_matches_sort_then_slice_on_adversarial_ties():
    scores = {1: 0.5, 2: 0.5, 3: 0.7, 4: 0.5, 5: 0.2, 6: 0.7}
    bounds = {nid: score for nid, score in scores.items()}  # exactly tight
    collector = TopKCollector(3, _FixedScores(scores, bounds))
    for nid in [5, 2, 6, 1, 4, 3]:  # scrambled arrival order
        collector.add(nid)
    expected = sorted(scores.items(), key=lambda p: (-p[1], p[0]))[:3]
    assert collector.ranked() == expected


def test_collector_prunes_on_upper_bound_without_scoring():
    scores = {1: 1.0, 2: 0.9, 3: 0.1, 4: 0.05}
    bounds = {1: 1.0, 2: 0.95, 3: 0.2, 4: 0.1}
    model = _FixedScores(scores, bounds)
    collector = TopKCollector(2, model)
    for nid in [1, 2, 3, 4]:
        collector.add(nid)
    # Nodes 3 and 4 have bounds below the floor (0.9): never scored.
    assert model.score_calls == 2
    assert collector.pruned == 2
    assert collector.scored == 2
    assert collector.ranked() == [(1, 1.0), (2, 0.9)]


def test_collector_tie_on_bound_keeps_lower_id():
    # Floor is (0.5, id=3); a later node with bound == 0.5 and a *lower* id
    # must be scored (it wins the tie-break), a higher id must be skipped.
    scores = {3: 0.5, 9: 0.8, 2: 0.5, 7: 0.5}
    bounds = dict(scores)
    model = _FixedScores(scores, bounds)
    collector = TopKCollector(2, model)
    for nid in [3, 9, 2, 7]:
        collector.add(nid)
    assert collector.ranked() == [(9, 0.8), (2, 0.5)]
    assert collector.pruned == 1  # node 7 skipped, node 2 scored


def test_collector_unscored_keeps_first_k_ids_and_empty_scores():
    collector = TopKCollector(3, None)
    for nid in [4, 1, 9, 2, 8]:
        collector.add(nid)
    assert collector.ranked() == [(1, 0.0), (2, 0.0), (4, 0.0)]
    assert collector.scores() == {}


@settings(max_examples=60, deadline=None)
@given(
    scores=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=30
    ),
    k=st.integers(min_value=1, max_value=8),
    slack=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
)
def test_collector_property_equals_full_sort(scores, k, slack):
    table = {idx: score for idx, score in enumerate(scores)}
    bounds = {idx: score + slack for idx, score in table.items()}
    collector = TopKCollector(k, _FixedScores(table, bounds))
    for nid in table:
        collector.add(nid)
    expected = sorted(table.items(), key=lambda p: (-p[1], p[0]))[:k]
    assert collector.ranked() == expected


# ----------------------------------------------------- upper-bound contract
@pytest.mark.parametrize("model_name", ["tfidf", "probabilistic"])
def test_score_upper_bound_dominates_document_score(index, model_name):
    model = get_model(model_name, index.statistics)
    for query_tokens in (["alpha"], ["alpha", "beta"], TOKENS, ["missing"]):
        model.prepare(sorted(query_tokens))
        for node_id in index.node_ids():
            assert model.score_upper_bound(node_id) >= model.document_score(
                node_id
            ), (model_name, query_tokens, node_id)


documents = st.lists(st.sampled_from(TOKENS), min_size=0, max_size=12)


@settings(max_examples=40, deadline=None)
@given(
    docs=st.lists(documents, min_size=1, max_size=8),
    query_tokens=st.lists(st.sampled_from(TOKENS), min_size=1, max_size=4),
    model_name=st.sampled_from(["tfidf", "probabilistic"]),
)
def test_upper_bound_contract_on_random_corpora(docs, query_tokens, model_name):
    nodes = [
        ContextNode.from_tokens(idx, tokens, sentence_length=3, paragraph_length=5)
        for idx, tokens in enumerate(docs)
    ]
    index = InvertedIndex(Collection.from_nodes(nodes))
    model = get_model(model_name, index.statistics)
    model.prepare(sorted(query_tokens))
    for node_id in index.node_ids():
        assert model.score_upper_bound(node_id) >= model.document_score(node_id)


def test_base_model_bound_defaults_to_inf(index):
    class Minimal(ScoringModel):
        def document_score(self, node_id: int) -> float:
            return 1.0

    model = Minimal(index.statistics)
    model.prepare(["alpha"])
    assert model.score_upper_bound(0) == math.inf


# ------------------------------------------------------- executor invariants
def test_pruned_result_keeps_complete_node_ids(index):
    executor = Executor(index, scoring=get_model("tfidf", index.statistics))
    query = parse_query("'alpha' OR 'gamma'").node
    full = executor.execute(query)
    pruned = executor.execute(query, top_k=2)
    assert pruned.node_ids == full.node_ids  # total_matches stays exact
    assert pruned.ranked() == full.ranked()[:2]
    assert pruned.ranked_limit == 2
    assert len(pruned.scores) <= len(full.scores)


def test_pushdown_skips_document_scores():
    # One document is overwhelmingly about 'beta'; the rest mention it once
    # amid filler, so their upper bounds sit far below the top-1 floor and
    # the pushdown must skip their document scores entirely.
    texts = ["beta beta beta beta beta beta"] + [
        f"beta filler{i} extra{i} other{i} more{i} noise{i} padding{i}"
        for i in range(20)
    ]
    skewed = InvertedIndex(Collection.from_texts(texts))
    calls = {"count": 0}
    model = get_model("tfidf", skewed.statistics)
    original = model.document_score

    def counting(node_id):
        calls["count"] += 1
        return original(node_id)

    model.document_score = counting
    executor = Executor(skewed, scoring=model)
    query = parse_query("'beta'").node
    full = executor.execute(query)
    full_calls = calls["count"]
    assert full_calls == len(texts)
    calls["count"] = 0
    pruned = executor.execute(query, top_k=1)
    assert pruned.ranked() == full.ranked()[:1]
    assert calls["count"] < full_calls


def test_execute_many_pushdown_matches_execute(index):
    executor = Executor(index, scoring=get_model("probabilistic", index.statistics))
    queries = [
        parse_query("'alpha'").node,
        parse_query("'beta' AND 'gamma'").node,
        parse_query("'alpha' OR 'delta'").node,
    ]
    batch = executor.execute_many(queries, top_k=2)
    singles = [executor.execute(query, top_k=2) for query in queries]
    assert [r.ranked() for r in batch] == [r.ranked() for r in singles]
    assert [r.node_ids for r in batch] == [r.node_ids for r in singles]


def test_comp_fallback_discards_partial_collector(index):
    # An unscored COMP-class query routed through the pushdown must still
    # produce the first-k-ids prefix even when evaluation falls back.
    engine = FullTextEngine.from_collection(Collection.from_texts(
        ["alpha beta", "beta gamma", "alpha gamma beta"]
    ))
    query = "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'beta' AND ordered(p1, p2))"
    full = engine.search(query)
    top = engine.search(query, top_k=1)
    assert [r.node_id for r in top.results] == [
        r.node_id for r in full.results
    ][:1]
    assert top.total_matches == full.total_matches


def test_collector_gives_up_after_fruitless_bound_checks():
    # Bounds that never discriminate: after GIVE_UP_AFTER consecutive
    # non-prunes the collector must stop calling score_upper_bound, and the
    # result must still be the exact top-k.
    count = 2000
    scores = {nid: float(nid % 7) for nid in range(count)}
    bounds = {nid: 100.0 for nid in range(count)}  # hopelessly loose
    model = _FixedScores(scores, bounds)
    bound_calls = {"count": 0}
    original = model.score_upper_bound

    def counting(node_id):
        bound_calls["count"] += 1
        return original(node_id)

    model.score_upper_bound = counting
    collector = TopKCollector(5, model)
    for nid in range(count):
        collector.add(nid)
    assert bound_calls["count"] == TopKCollector.GIVE_UP_AFTER
    assert collector.pruned == 0
    expected = sorted(scores.items(), key=lambda p: (-p[1], p[0]))[:5]
    assert collector.ranked() == expected


def test_exact_score_ties_are_pruned_via_id_tiebreak():
    # A corpus whose top ranks saturate at one exact score: every later
    # tying node must be pruned through the id tie-break, not scored.
    texts = ["alpha beta"] * 40
    index = InvertedIndex(Collection.from_texts(texts))
    model = get_model("probabilistic", index.statistics)
    calls = {"count": 0}
    original = model.document_score

    def counting(node_id):
        calls["count"] += 1
        return original(node_id)

    model.document_score = counting
    executor = Executor(index, scoring=model)
    query = parse_query("'alpha' AND 'beta'").node
    full = executor.execute(query)
    full_calls = calls["count"]
    assert full_calls == 40
    calls["count"] = 0
    pruned = executor.execute(query, top_k=5)
    assert pruned.ranked() == full.ranked()[:5]
    assert calls["count"] == 5  # ties beyond the heap never scored
