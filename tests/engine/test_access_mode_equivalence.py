"""Access-mode contract tests: paper-mode cost accounting and fast-mode
result equivalence.

The paper-mode guard pins the exact ``CursorStats`` counters of the seed
(pre-columnar) implementation on a fixed synthetic workload -- the Figure
3--8 benchmarks report these counters, so any change here is a break of the
cost-model contract, not a refactoring detail.  The numbers were captured by
running the original sequential implementation on this exact workload.
"""

from __future__ import annotations

import pytest

from repro.bench.workload import bool_query, workload_queries
from repro.corpus.synthetic import DEFAULT_QUERY_TOKENS, generate_inex_like_collection
from repro.engine.bool_engine import BoolEngine
from repro.engine.npred_engine import NPredEngine
from repro.engine.operators import (
    ScanOperator,
    ZigZagJoinOperator,
    collect_nodes,
    rarest_first_order,
    zigzag_node_intersect,
)
from repro.engine.ppred_engine import PPredEngine
from repro.index import InvertedIndex
from repro.index.cursor import FAST_MODE, CursorFactory
from repro.index.postings import PostingList
from repro.model.positions import Position

#: The fixed guard workload: deterministic synthetic corpus + query shapes.
GUARD_NODES = 120
GUARD_TOKENS_PER_NODE = 60
GUARD_POS_PER_ENTRY = 3

#: (engine, series) -> (match count, seed CursorStats.as_dict()).  Captured
#: from the seed implementation; see the module docstring.
SEED_COUNTS = {
    ("bool", "BOOL"): (
        29,
        {"next_entry_calls": 241, "get_positions_calls": 0, "positions_returned": 0},
    ),
    ("ppred", "BOOL"): (
        29,
        {"next_entry_calls": 239, "get_positions_calls": 238, "positions_returned": 714},
    ),
    ("ppred", "POSITIVE"): (
        27,
        {"next_entry_calls": 239, "get_positions_calls": 238, "positions_returned": 714},
    ),
    ("npred", "BOOL"): (
        29,
        {"next_entry_calls": 237, "get_positions_calls": 236, "positions_returned": 708},
    ),
    ("npred", "POSITIVE"): (
        27,
        {"next_entry_calls": 237, "get_positions_calls": 236, "positions_returned": 708},
    ),
    ("npred", "NEGATIVE"): (
        28,
        {"next_entry_calls": 1422, "get_positions_calls": 1416, "positions_returned": 4248},
    ),
}

ENGINES = {"bool": BoolEngine, "ppred": PPredEngine, "npred": NPredEngine}


@pytest.fixture(scope="module")
def guard_index() -> InvertedIndex:
    collection = generate_inex_like_collection(
        num_nodes=GUARD_NODES,
        tokens_per_node=GUARD_TOKENS_PER_NODE,
        pos_per_entry=GUARD_POS_PER_ENTRY,
    )
    return InvertedIndex(collection)


@pytest.fixture(scope="module")
def guard_queries():
    return workload_queries(list(DEFAULT_QUERY_TOKENS)[:3], 3, 2)


@pytest.mark.parametrize("engine_name,series", sorted(SEED_COUNTS))
def test_paper_mode_stats_match_the_seed_implementation(
    guard_index, guard_queries, engine_name, series
):
    expected_matches, expected_stats = SEED_COUNTS[(engine_name, series)]
    engine = ENGINES[engine_name](guard_index)
    nodes, stats = engine.evaluate_with_stats(guard_queries[series])
    assert len(nodes) == expected_matches
    assert stats.as_dict() == expected_stats
    # Paper mode never charges seeks.
    assert stats.seek_calls == 0
    assert stats.seek_probes == 0


@pytest.mark.parametrize("engine_name,series", sorted(SEED_COUNTS))
def test_fast_mode_results_equal_paper_mode(
    guard_index, guard_queries, engine_name, series
):
    query = guard_queries[series]
    paper = ENGINES[engine_name](guard_index).evaluate(query)
    fast = ENGINES[engine_name](guard_index, access_mode=FAST_MODE).evaluate(query)
    assert fast == paper


def test_fast_mode_charges_fewer_sequential_reads(guard_index, guard_queries):
    """On an intersection workload the fast mode replaces most next_entry
    charges with logarithmic seeks."""
    query = guard_queries["POSITIVE"]
    _, paper_stats = PPredEngine(guard_index).evaluate_with_stats(query)
    _, fast_stats = PPredEngine(
        guard_index, access_mode=FAST_MODE
    ).evaluate_with_stats(query)
    assert fast_stats.next_entry_calls < paper_stats.next_entry_calls
    assert fast_stats.seek_calls > 0


def test_fast_mode_bool_zigzag_on_asymmetric_lists(guard_index):
    """A rare AND common conjunction engages the zig-zag (seeks charged)."""
    rare = min(guard_index.tokens(), key=guard_index.document_frequency)
    common = max(guard_index.tokens(), key=guard_index.document_frequency)
    if guard_index.document_frequency(rare) == 0:  # pragma: no cover - guard
        pytest.skip("degenerate synthetic corpus")
    query = bool_query([rare, common])
    paper_engine = BoolEngine(guard_index)
    fast_engine = BoolEngine(guard_index, access_mode=FAST_MODE)
    paper_nodes, _ = paper_engine.evaluate_with_stats(query)
    fast_nodes, fast_stats = fast_engine.evaluate_with_stats(query)
    assert fast_nodes == paper_nodes
    if guard_index.document_frequency(rare) * BoolEngine.ZIGZAG_SELECTIVITY_RATIO <= (
        guard_index.document_frequency(common)
    ):
        assert fast_stats.seek_calls > 0


# ------------------------------------------------------------ merge primitives
def tok_list(token: str, *node_ids: int) -> PostingList:
    posting_list = PostingList(token)
    for node_id in node_ids:
        posting_list.add_occurrences(node_id, (Position(0),))
    return posting_list


def test_zigzag_node_intersect_matches_set_intersection():
    lists = [
        tok_list("a", 1, 2, 4, 6, 9, 12, 40),
        tok_list("b", 2, 4, 5, 9, 40, 41),
        tok_list("c", 0, 2, 9, 10, 40),
    ]
    factory = CursorFactory(mode=FAST_MODE)
    cursors = [factory.open(posting_list) for posting_list in lists]
    expected = sorted(
        set(lists[0].node_ids()) & set(lists[1].node_ids()) & set(lists[2].node_ids())
    )
    assert zigzag_node_intersect(cursors) == expected


def test_zigzag_node_intersect_empty_input_and_empty_list():
    assert zigzag_node_intersect([]) == []
    factory = CursorFactory(mode=FAST_MODE)
    cursors = [factory.open(tok_list("a", 1, 2)), factory.open(PostingList("b"))]
    assert zigzag_node_intersect(cursors) == []


def test_zigzag_join_operator_matches_pairwise_join(guard_index):
    tokens = list(DEFAULT_QUERY_TOKENS)[:3]
    factory = CursorFactory(mode=FAST_MODE)
    scans = [ScanOperator(guard_index.open_cursor(token, factory)) for token in tokens]
    operator = ZigZagJoinOperator(scans, merge_order=rarest_first_order(scans))
    assert operator.arity == 3

    reference_factory = CursorFactory()
    from repro.engine.operators import JoinOperator

    ref_scans = [
        ScanOperator(guard_index.open_cursor(token, reference_factory))
        for token in tokens
    ]
    reference = JoinOperator(JoinOperator(ref_scans[0], ref_scans[1]), ref_scans[2])
    assert collect_nodes(operator) == collect_nodes(reference)


def test_rarest_first_order_sorts_by_list_length(guard_index):
    factory = CursorFactory(mode=FAST_MODE)
    tokens = list(DEFAULT_QUERY_TOKENS)[:3]
    scans = [ScanOperator(guard_index.open_cursor(token, factory)) for token in tokens]
    order = rarest_first_order(scans)
    counts = [scans[index].entry_count() for index in order]
    assert counts == sorted(counts)
