"""Tests for the PPRED single-scan engine."""

from __future__ import annotations

import pytest

from repro.engine.ppred_engine import PPredEngine
from repro.exceptions import UnsupportedQueryError
from repro.languages.parser import LanguageLevel, QueryParser

_PARSER = QueryParser(LanguageLevel.COMP)


@pytest.fixture(scope="module")
def engine(figure1_index) -> PPredEngine:
    return PPredEngine(figure1_index)


def evaluate(engine: PPredEngine, text: str) -> list[int]:
    return engine.evaluate(_PARSER.parse_closed(text))


def test_conjunction_of_tokens(engine):
    assert evaluate(engine, "'usability' AND 'software'") == [0, 1]
    assert evaluate(engine, "'usability' AND 'databases'") == []


def test_distance_predicate(engine):
    # 'task completion' as an adjacent phrase appears in nodes 0 and 1.
    assert evaluate(engine, "dist('task', 'completion', 0)") == [0, 1]
    # 'usability' within 2 tokens of 'software'.
    assert (
        evaluate(
            engine,
            "SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'software' "
            "AND distance(p1, p2, 2))",
        )
        == [0, 1]
    )


def test_ordered_predicate(engine):
    # 'efficient' strictly before 'completion'.
    assert (
        evaluate(
            engine,
            "SOME p1 SOME p2 (p1 HAS 'efficient' AND p2 HAS 'completion' "
            "AND ordered(p1, p2))",
        )
        == [0, 1]
    )
    # 'completion' before 'efficient' never happens.
    assert (
        evaluate(
            engine,
            "SOME p1 SOME p2 (p1 HAS 'completion' AND p2 HAS 'efficient' "
            "AND ordered(p1, p2))",
        )
        == []
    )


def test_samepara_and_samesentence_predicates(engine):
    # 'achieving' and 'completion' are in the same paragraph of node 0.
    assert (
        evaluate(
            engine,
            "SOME p1 SOME p2 (p1 HAS 'achieving' AND p2 HAS 'completion' "
            "AND samepara(p1, p2))",
        )
        == [0]
    )
    # 'usability' and 'completion' are never in the same paragraph.
    assert (
        evaluate(
            engine,
            "SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'completion' "
            "AND samepara(p1, p2))",
        )
        == []
    )


def test_multiple_predicates_figure4_shape(engine):
    # In node 1 the only 'usability' occurs *after* the only 'software', so
    # the ordered() constraint leaves node 0 as the single answer.
    query = (
        "SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'software' "
        "AND samepara(p1, p2) AND distance(p1, p2, 5) AND ordered(p1, p2))"
    )
    assert evaluate(engine, query) == [0]
    without_order = (
        "SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'software' "
        "AND samepara(p1, p2) AND distance(p1, p2, 5))"
    )
    assert evaluate(engine, without_order) == [0, 1]


def test_and_not_closed_subquery(engine):
    assert (
        evaluate(engine, "dist('task', 'completion', 0) AND NOT 'usability'") == []
    )
    assert (
        evaluate(engine, "dist('task', 'completion', 0) AND NOT 'databases'")
        == [0, 1]
    )


def test_union_of_closed_blocks(engine):
    assert (
        evaluate(engine, "dist('task', 'completion', 0) OR 'networks'") == [0, 1, 3]
    )


def test_closed_or_conjunct_inside_block(engine):
    assert (
        evaluate(engine, "'efficient' AND ('networks' OR 'databases')") == [2]
    )


def test_same_token_twice_with_samepos(engine):
    # samepos is a positive predicate: trivially satisfied by scanning the
    # same list twice and catching the positions up to each other.
    assert (
        evaluate(
            engine,
            "SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'usability' "
            "AND samepos(p1, p2))",
        )
        == [0, 1]
    )


def test_rejects_negative_predicates(engine):
    with pytest.raises(UnsupportedQueryError):
        evaluate(
            engine,
            "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND not_distance(p1, p2, 1))",
        )


def test_rejects_queries_needing_il_any(engine):
    with pytest.raises(UnsupportedQueryError):
        evaluate(engine, "NOT 'usability'")
    with pytest.raises(UnsupportedQueryError):
        evaluate(engine, "EVERY p (p HAS 'usability')")


def test_cursor_stats_are_linear_in_list_sizes(figure1_index):
    engine = PPredEngine(figure1_index)
    query = _PARSER.parse_closed(
        "SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'software' "
        "AND distance(p1, p2, 2))"
    )
    _, stats = engine.evaluate_with_stats(query)
    total_entries = (
        figure1_index.posting_list("usability").document_frequency()
        + figure1_index.posting_list("software").document_frequency()
    )
    # Every inverted-list entry is visited at most once (plus the exhausted
    # next_entry calls returning None).
    assert stats.next_entry_calls <= total_entries + 2
    total_positions = (
        figure1_index.posting_list("usability").total_positions()
        + figure1_index.posting_list("software").total_positions()
    )
    assert stats.positions_returned <= total_positions
