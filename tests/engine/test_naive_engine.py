"""Tests for the naive (materialising) COMP engine."""

from __future__ import annotations

import pytest

from repro.engine.naive_engine import NaiveCompEngine
from repro.languages.parser import LanguageLevel, QueryParser
from repro.model.calculus import CalculusEvaluator
from repro.scoring import TfIdfScoring

_PARSER = QueryParser(LanguageLevel.COMP)


@pytest.fixture(scope="module")
def engine(figure1_index) -> NaiveCompEngine:
    return NaiveCompEngine(figure1_index)


def evaluate(engine: NaiveCompEngine, text: str) -> list[int]:
    return engine.evaluate(_PARSER.parse_closed(text))


def test_basic_keyword_queries(engine):
    assert evaluate(engine, "'usability' AND 'software'") == [0, 1]
    assert evaluate(engine, "'usability' OR 'databases'") == [0, 1, 2]
    assert evaluate(engine, "NOT 'usability'") == [2, 3]


def test_every_quantifier_is_supported(engine):
    assert evaluate(engine, "EVERY p (p HAS 'usability')") == []
    # Every position of node 3 holds one of the five listed words.
    assert evaluate(
        engine,
        "EVERY p (p HAS 'networks' OR p HAS 'route' OR p HAS 'packets' "
        "OR p HAS 'between' OR p HAS 'hosts')",
    ) == [3]


def test_position_level_negation(engine):
    # Nodes containing a token other than 'usability' (all but none here,
    # so use a more selective witness): nodes with a token other than every
    # token of node 3.
    assert evaluate(engine, "SOME p (NOT p HAS 'networks')") == [0, 1, 2, 3]
    assert evaluate(
        engine,
        "SOME p (NOT p HAS 'networks' AND NOT p HAS 'route' AND NOT p HAS "
        "'packets' AND NOT p HAS 'between' AND NOT p HAS 'hosts')",
    ) == [0, 1, 2]


def test_negated_predicate_inside_block(engine):
    result = evaluate(
        engine,
        "SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'software' "
        "AND NOT distance(p1, p2, 1))",
    )
    # Node 0 has distant usability/software pairs; node 1's only pair
    # (usability@3, software@0) also has two intervening tokens.
    assert result == [0, 1]


def test_results_match_the_calculus_oracle(engine, figure1_collection):
    oracle = CalculusEvaluator()
    for text in [
        "'efficient' AND ('usability' OR 'databases')",
        "dist('task', 'completion', 0)",
        "SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'software' "
        "AND samepara(p1, p2))",
        "EVERY p (NOT p HAS 'usability')",
    ]:
        query = _PARSER.parse_closed(text)
        expected = oracle.evaluate_query(query.to_calculus_query(), figure1_collection)
        assert engine.evaluate(query) == expected, text


def test_evaluate_full_reports_algebra_plan(engine):
    evaluation = engine.evaluate_full(_PARSER.parse_closed("'usability' AND 'software'"))
    assert evaluation.node_ids == [0, 1]
    assert "R['usability']" in evaluation.algebra_text
    assert "join" in evaluation.algebra_text


def test_scored_evaluation_populates_node_scores(figure1_index):
    scoring = TfIdfScoring(figure1_index.statistics)
    engine = NaiveCompEngine(figure1_index, scoring=scoring)
    evaluation = engine.evaluate_full(
        _PARSER.parse_closed("'usability' AND 'software'")
    )
    assert set(evaluation.scores) == {0, 1}
    assert all(score > 0 for score in evaluation.scores.values())
