"""Tests for the BOOL merge engine."""

from __future__ import annotations

import pytest

from repro.engine.bool_engine import BoolEngine
from repro.exceptions import UnsupportedQueryError
from repro.index import InvertedIndex
from repro.languages.bool_lang import parse_bool
from repro.languages.parser import LanguageLevel, QueryParser
from repro.scoring import TfIdfScoring


@pytest.fixture(scope="module")
def engine(figure1_index) -> BoolEngine:
    return BoolEngine(figure1_index)


def evaluate(engine: BoolEngine, text: str) -> list[int]:
    return engine.evaluate(parse_bool(text))


def test_single_token(engine):
    assert evaluate(engine, "'usability'") == [0, 1]
    assert evaluate(engine, "'databases'") == [2]
    assert evaluate(engine, "'missing'") == []


def test_conjunction_and_disjunction(engine):
    assert evaluate(engine, "'usability' AND 'software'") == [0, 1]
    assert evaluate(engine, "'usability' AND 'databases'") == []
    assert evaluate(engine, "'usability' OR 'databases'") == [0, 1, 2]


def test_negation_complements_over_the_whole_context(engine):
    assert evaluate(engine, "NOT 'usability'") == [2, 3]
    assert evaluate(engine, "'efficient' AND NOT 'usability'") == [2]


def test_any_token(engine):
    assert evaluate(engine, "ANY") == [0, 1, 2, 3]
    assert evaluate(engine, "ANY AND NOT 'efficient'") == [3]


def test_nested_boolean_structure(engine):
    assert evaluate(engine, "('usability' OR 'databases') AND NOT 'testing'") == [0, 2]


def test_paper_example_merge_query(engine):
    # (’software’ AND ’usability’ AND NOT ’databases’) OR ’networks’
    result = evaluate(
        engine, "('software' AND 'usability' AND NOT 'databases') OR 'networks'"
    )
    assert result == [0, 1, 3]


def test_rejects_non_bool_queries(engine):
    comp = QueryParser(LanguageLevel.COMP).parse("SOME p (p HAS 'a')")
    with pytest.raises(UnsupportedQueryError):
        engine.evaluate(comp)


def test_cursor_statistics_are_reported(figure1_index):
    engine = BoolEngine(figure1_index)
    nodes, stats = engine.evaluate_with_stats(parse_bool("'usability' AND 'software'"))
    assert nodes == [0, 1]
    assert stats.next_entry_calls > 0


def test_scored_evaluation_ranks_matching_nodes(figure1_index):
    scoring = TfIdfScoring(figure1_index.statistics)
    engine = BoolEngine(figure1_index, scoring=scoring)
    scores = engine.evaluate_scored(parse_bool("'usability' OR 'databases'"))
    assert set(scores) == {0, 1, 2}
    assert all(score > 0 for score in scores.values())


def test_scored_negation_complements_scores(figure1_index):
    scoring = TfIdfScoring(figure1_index.statistics)
    engine = BoolEngine(figure1_index, scoring=scoring)
    scores = engine.evaluate_scored(parse_bool("NOT 'usability'"))
    assert set(scores) == {2, 3}
    assert all(0.0 <= score <= 1.0 for score in scores.values())
