"""Tests for engine selection and the executor."""

from __future__ import annotations

import pytest

from repro.engine.executor import Executor
from repro.exceptions import UnsupportedQueryError
from repro.languages.classify import LanguageClass
from repro.languages.parser import LanguageLevel, QueryParser
from repro.scoring import TfIdfScoring

_PARSER = QueryParser(LanguageLevel.COMP)


@pytest.fixture(scope="module")
def executor(figure1_index) -> Executor:
    return Executor(figure1_index)


def run(executor: Executor, text: str, engine: str = "auto"):
    return executor.execute(_PARSER.parse_closed(text), engine=engine)


def test_auto_selects_the_cheapest_engine(executor):
    assert run(executor, "'usability' AND 'software'").engine == "bool"
    assert run(executor, "dist('task', 'completion', 0)").engine == "ppred"
    assert (
        run(
            executor,
            "SOME p1 SOME p2 (p1 HAS 'task' AND p2 HAS 'usability' "
            "AND not_distance(p1, p2, 1))",
        ).engine
        == "npred"
    )
    assert run(executor, "EVERY p (p HAS 'usability')").engine == "comp"


def test_language_class_is_reported(executor):
    result = run(executor, "dist('task', 'completion', 0)")
    assert result.language_class is LanguageClass.PPRED


def test_forcing_a_more_general_engine_is_allowed(executor):
    bool_query = "'usability' AND 'software'"
    auto = run(executor, bool_query)
    forced_comp = run(executor, bool_query, engine="comp")
    forced_ppred = run(executor, bool_query, engine="ppred")
    assert forced_comp.engine == "comp"
    assert forced_ppred.engine == "ppred"
    assert auto.node_ids == forced_comp.node_ids == forced_ppred.node_ids


def test_forcing_a_weaker_engine_is_rejected(executor):
    with pytest.raises(UnsupportedQueryError):
        run(executor, "EVERY p (p HAS 'usability')", engine="ppred")
    with pytest.raises(UnsupportedQueryError):
        run(
            executor,
            "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND not_ordered(p1, p2))",
            engine="ppred",
        )
    with pytest.raises(UnsupportedQueryError):
        run(executor, "dist('a', 'b', 1)", engine="bool")


def test_unknown_engine_name_is_rejected(executor):
    with pytest.raises(UnsupportedQueryError):
        run(executor, "'usability'", engine="warp-drive")


def test_timing_and_stats_are_populated(executor):
    result = run(executor, "dist('task', 'completion', 0)")
    assert result.elapsed_seconds >= 0
    assert result.cursor_stats is not None
    assert result.cursor_stats.next_entry_calls > 0


def test_scoring_produces_ranked_results(figure1_index):
    executor = Executor(figure1_index, scoring=TfIdfScoring(figure1_index.statistics))
    result = executor.execute(_PARSER.parse_closed("'usability' OR 'databases'"))
    ranked = result.ranked()
    assert [node for node, _ in ranked] != []
    scores = [score for _, score in ranked]
    assert scores == sorted(scores, reverse=True)


def test_results_are_consistent_across_engines(executor):
    query = "dist('task', 'completion', 0) AND NOT 'databases'"
    auto = run(executor, query)
    comp = run(executor, query, engine="comp")
    npred = run(executor, query, engine="npred")
    assert auto.node_ids == comp.node_ids == npred.node_ids
