"""Cross-engine equivalence: every engine agrees with the calculus oracle.

This is the central correctness test of the reproduction.  A battery of
queries covering the whole language hierarchy is evaluated by

* the reference calculus evaluator (ground truth),
* the naive COMP engine (calculus -> algebra -> materialised evaluation),
* the BOOL merge engine (where applicable),
* the PPRED single-scan engine (where applicable),
* the NPRED permutation-thread engine (where applicable),

on both a hand-built structured collection and a synthetic one; all answers
must coincide.
"""

from __future__ import annotations

import pytest

from repro.engine.bool_engine import BoolEngine
from repro.engine.naive_engine import NaiveCompEngine
from repro.engine.npred_engine import NPredEngine
from repro.engine.ppred_engine import PPredEngine
from repro.index import InvertedIndex
from repro.languages.classify import LanguageClass, classify_query
from repro.languages.parser import LanguageLevel, QueryParser
from repro.model.calculus import CalculusEvaluator

_PARSER = QueryParser(LanguageLevel.COMP)

#: Queries spanning the whole hierarchy.  Tokens are chosen from both the
#: figure1 fixture vocabulary and the synthetic fixture's planted tokens.
QUERIES = [
    # BOOL / BOOL-NONEG
    "'usability'",
    "'alpha'",
    "'usability' AND 'software'",
    "'alpha' AND 'beta'",
    "'usability' OR 'databases' OR 'networks'",
    "'alpha' AND NOT 'beta'",
    "NOT 'alpha'",
    "ANY AND NOT ('usability' OR 'efficient')",
    # PPRED
    "dist('task', 'completion', 0)",
    "dist('alpha', 'beta', 10)",
    "SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'software' AND distance(p1, p2, 2))",
    "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'beta' AND ordered(p1, p2))",
    "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'beta' AND samepara(p1, p2))",
    "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'gamma' AND samesentence(p1, p2))",
    "SOME p1 SOME p2 SOME p3 (p1 HAS 'alpha' AND p2 HAS 'beta' AND p3 HAS 'gamma' "
    "AND ordered(p1, p2) AND distance(p2, p3, 20))",
    "dist('alpha', 'beta', 5) AND NOT 'gamma'",
    "dist('alpha', 'beta', 5) OR 'gamma'",
    "'efficient' AND ('networks' OR 'databases')",
    # NPRED
    "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'beta' AND not_distance(p1, p2, 5))",
    "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'beta' AND not_ordered(p1, p2))",
    "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'alpha' AND diffpos(p1, p2))",
    "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'beta' AND not_samepara(p1, p2))",
    "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'beta' AND ordered(p1, p2) "
    "AND not_distance(p1, p2, 2))",
    # COMP
    "SOME p (NOT p HAS 'alpha')",
    "EVERY p (p HAS 'alpha' OR p HAS 'beta')",
    "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'beta' AND NOT distance(p1, p2, 2))",
    "SOME p (p HAS 'usability' OR p HAS 'databases')",
]


def _engines_for(query, index):
    """Engines applicable to the query's language class."""
    language_class = classify_query(query)
    engines = {"comp": NaiveCompEngine(index)}
    if language_class in (LanguageClass.BOOL_NONEG, LanguageClass.BOOL):
        engines["bool"] = BoolEngine(index)
    if language_class in (LanguageClass.BOOL_NONEG, LanguageClass.PPRED):
        engines["ppred"] = PPredEngine(index)
    if language_class in (
        LanguageClass.BOOL_NONEG,
        LanguageClass.PPRED,
        LanguageClass.NPRED,
    ):
        engines["npred"] = NPredEngine(index)
    return engines


@pytest.mark.parametrize("text", QUERIES)
def test_all_engines_agree_with_the_oracle_on_figure1(text, figure1_index, figure1_collection):
    _check_equivalence(text, figure1_index, figure1_collection)


@pytest.mark.parametrize("text", QUERIES)
def test_all_engines_agree_with_the_oracle_on_synthetic(
    text, small_synthetic_index, small_synthetic
):
    _check_equivalence(text, small_synthetic_index, small_synthetic)


def _check_equivalence(text, index, collection):
    query = _PARSER.parse_closed(text)
    oracle = CalculusEvaluator().evaluate_query(query.to_calculus_query(), collection)
    for name, engine in _engines_for(query, index).items():
        assert engine.evaluate(query) == oracle, f"{name} disagrees on {text!r}"
