"""Tests for the pipelined plan operators (Algorithms 1-5)."""

from __future__ import annotations

import pytest

from repro.corpus import Collection, ContextNode
from repro.exceptions import EvaluationError
from repro.index import InvertedIndex
from repro.engine.operators import (
    JoinOperator,
    NodeDifferenceOperator,
    NodeUnionOperator,
    ProjectOperator,
    ScanOperator,
    SelectOperator,
    collect_nodes,
)
from repro.model.predicates import DistancePredicate, OrderedPredicate


@pytest.fixture
def index() -> InvertedIndex:
    collection = Collection.from_nodes(
        [
            ContextNode.from_tokens(0, ["a", "x", "b", "x", "a"]),
            ContextNode.from_tokens(1, ["b", "b", "b"]),
            ContextNode.from_tokens(2, ["a", "y", "y", "y", "b"]),
            ContextNode.from_tokens(3, ["c"]),
            ContextNode.from_tokens(4, ["a"]),
        ]
    )
    return InvertedIndex(collection)


def scan(index: InvertedIndex, token: str) -> ScanOperator:
    return ScanOperator(index.open_cursor(token))


# --------------------------------------------------------------------------
# Scan
# --------------------------------------------------------------------------
def test_scan_iterates_nodes_and_positions(index):
    operator = scan(index, "a")
    assert operator.advance_node() == 0
    assert operator.position(0).offset == 0
    assert operator.advance_position(0, 1)
    assert operator.position(0).offset == 4
    assert not operator.advance_position(0, 5)
    assert operator.advance_node() == 2
    assert operator.position(0).offset == 0
    assert operator.advance_node() == 4
    assert operator.advance_node() is None


def test_scan_advance_position_is_inclusive(index):
    operator = scan(index, "a")
    operator.advance_node()
    assert operator.advance_position(0, 4)
    assert operator.position(0).offset == 4
    # already at >= 4: no movement needed
    assert operator.advance_position(0, 4)
    assert operator.position(0).offset == 4


def test_scan_position_errors_when_not_positioned(index):
    operator = scan(index, "a")
    with pytest.raises(EvaluationError):
        operator.position(0)
    with pytest.raises(EvaluationError):
        operator.position(1)


def test_scan_of_missing_token_is_empty(index):
    operator = scan(index, "zzz")
    assert operator.advance_node() is None
    assert collect_nodes(operator) == []


# --------------------------------------------------------------------------
# Join
# --------------------------------------------------------------------------
def test_join_merges_on_node_ids(index):
    join = JoinOperator(scan(index, "a"), scan(index, "b"))
    assert collect_nodes(join) == [0, 2]


def test_join_positions_dispatch_to_inputs(index):
    join = JoinOperator(scan(index, "a"), scan(index, "b"))
    assert join.advance_node() == 0
    assert join.position(0).offset == 0  # first 'a' of node 0
    assert join.position(1).offset == 2  # first (and only) 'b' of node 0
    assert join.advance_position(0, 1)   # move the left input forward
    assert join.position(0).offset == 4
    assert join.position(1).offset == 2  # the right input is untouched


def test_join_advance_position_failure_is_reported(index):
    join = JoinOperator(scan(index, "a"), scan(index, "b"))
    join.advance_node()
    assert not join.advance_position(1, 3)  # 'b' has no position >= 3 in node 0
    assert join.advance_position(0, 4)      # 'a' does have offset 4


def test_join_with_empty_side_is_empty(index):
    join = JoinOperator(scan(index, "a"), scan(index, "zzz"))
    assert collect_nodes(join) == []


def test_nested_joins_accumulate_arity(index):
    join = JoinOperator(
        JoinOperator(scan(index, "a"), scan(index, "b")), scan(index, "x")
    )
    assert join.arity == 3
    assert collect_nodes(join) == [0]


# --------------------------------------------------------------------------
# Select
# --------------------------------------------------------------------------
def test_select_with_distance_predicate(index):
    join = JoinOperator(scan(index, "a"), scan(index, "b"))
    select = SelectOperator(join, DistancePredicate(), [0, 1], [1])
    # node 0: a@0,b@2 -> 1 intervening token -> ok.
    # node 2: a@0,b@4 -> 3 intervening tokens -> fails.
    assert collect_nodes(select) == [0]


def test_select_with_ordered_predicate(index):
    join = JoinOperator(scan(index, "b"), scan(index, "a"))
    select = SelectOperator(join, OrderedPredicate(), [0, 1])
    # node 0: b@2 before a@4 -> ok; node 2: b@4 after every a -> fails.
    assert collect_nodes(select) == [0]


def test_stacked_selects_pipeline_correctly(index):
    join = JoinOperator(scan(index, "a"), scan(index, "b"))
    ordered = SelectOperator(join, OrderedPredicate(), [0, 1])
    close = SelectOperator(ordered, DistancePredicate(), [0, 1], [1])
    assert collect_nodes(close) == [0]


def test_select_attribute_validation(index):
    join = JoinOperator(scan(index, "a"), scan(index, "b"))
    with pytest.raises(EvaluationError):
        SelectOperator(join, OrderedPredicate(), [0, 5])


# --------------------------------------------------------------------------
# Project / union / difference
# --------------------------------------------------------------------------
def test_project_to_node_level(index):
    join = JoinOperator(scan(index, "a"), scan(index, "b"))
    project = ProjectOperator(join, keep=())
    assert project.arity == 0
    assert collect_nodes(project) == [0, 2]
    with pytest.raises(EvaluationError):
        project.position(0)


def test_project_keeps_selected_attribute(index):
    join = JoinOperator(scan(index, "a"), scan(index, "b"))
    project = ProjectOperator(join, keep=(1,))
    assert project.advance_node() == 0
    assert project.position(0).offset == 2  # the 'b' position


def test_node_union(index):
    union = NodeUnionOperator(
        ProjectOperator(scan(index, "a"), ()), ProjectOperator(scan(index, "c"), ())
    )
    assert collect_nodes(union) == [0, 2, 3, 4]


def test_node_union_deduplicates_common_nodes(index):
    union = NodeUnionOperator(
        ProjectOperator(scan(index, "a"), ()), ProjectOperator(scan(index, "b"), ())
    )
    assert collect_nodes(union) == [0, 1, 2, 4]


def test_node_union_requires_node_level_inputs(index):
    with pytest.raises(EvaluationError):
        NodeUnionOperator(scan(index, "a"), ProjectOperator(scan(index, "b"), ()))


def test_node_difference(index):
    difference = NodeDifferenceOperator(
        ProjectOperator(scan(index, "a"), ()), ProjectOperator(scan(index, "b"), ())
    )
    assert collect_nodes(difference) == [4]


def test_node_difference_with_empty_right_side(index):
    difference = NodeDifferenceOperator(
        ProjectOperator(scan(index, "a"), ()), ProjectOperator(scan(index, "zzz"), ())
    )
    assert collect_nodes(difference) == [0, 2, 4]
