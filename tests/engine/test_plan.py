"""Tests for the plan extraction used by the PPRED/NPRED engines."""

from __future__ import annotations

import pytest

from repro.exceptions import UnsupportedQueryError
from repro.engine.plan import (
    BlockPlan,
    DifferencePlan,
    IntersectPlan,
    UnionPlan,
    describe_plan,
    extract_plan,
    plan_blocks,
    plan_polarities,
)
from repro.languages.parser import LanguageLevel, QueryParser
from repro.model.predicates import Polarity

_PARSER = QueryParser(LanguageLevel.COMP)


def plan(text: str):
    return extract_plan(_PARSER.parse_closed(text))


def test_simple_conjunctive_block():
    block = plan(
        "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND distance(p1, p2, 5))"
    )
    assert isinstance(block, BlockPlan)
    assert block.bindings == [("p1", "a"), ("p2", "b")]
    assert [spec.name for spec in block.predicates] == ["distance"]
    assert block.attribute_of("p2") == 1


def test_anonymous_token_literals_get_fresh_variables():
    block = plan("'a' AND 'b'")
    assert [token for _, token in block.bindings] == ["a", "b"]
    assert len({var for var, _ in block.bindings}) == 2


def test_dist_construct_desugars_into_bindings_and_distance():
    block = plan("dist('a', 'b', 3)")
    assert [token for _, token in block.bindings] == ["a", "b"]
    assert block.predicates[0].name == "distance"
    assert block.predicates[0].constants == (3,)


def test_negated_closed_subquery_becomes_difference_entry():
    block = plan("SOME p1 (p1 HAS 'a') AND NOT ('b' AND 'c')")
    assert isinstance(block, BlockPlan)
    assert len(block.negated) == 1
    assert isinstance(block.negated[0], BlockPlan)


def test_or_of_closed_queries_becomes_union_plan():
    result = plan("dist('a', 'b', 1) OR 'c'")
    assert isinstance(result, UnionPlan)
    assert isinstance(result.left, BlockPlan)
    assert isinstance(result.right, BlockPlan)


def test_closed_or_conjunct_inside_a_block():
    block = plan("SOME p1 (p1 HAS 'a') AND ('b' OR 'c')")
    assert isinstance(block, BlockPlan)
    assert len(block.closed_conjuncts) == 1
    assert isinstance(block.closed_conjuncts[0], UnionPlan)


def test_plan_polarities(figure1_index):
    positive = plan(
        "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND ordered(p1, p2))"
    )
    negative = plan(
        "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND not_ordered(p1, p2))"
    )
    assert plan_polarities(positive) == {Polarity.POSITIVE}
    assert plan_polarities(negative) == {Polarity.NEGATIVE}


def test_plan_blocks_traverses_nested_plans():
    result = plan("(dist('a', 'b', 1) OR 'c') AND NOT 'd'")
    blocks = plan_blocks(result)
    assert len(blocks) >= 3


def test_describe_plan_is_readable():
    text = describe_plan(
        plan("SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND distance(p1, p2, 5))")
    )
    assert "scan p1 <- 'a'" in text
    assert "select distance(p1, p2, 5)" in text


# --------------------------------------------------------------------------
# Unsupported shapes
# --------------------------------------------------------------------------
@pytest.mark.parametrize(
    "text",
    [
        "NOT 'a'",                                 # free-standing negation
        "ANY",                                     # universal token
        "SOME p (p HAS ANY)",                      # ANY through a variable
        "EVERY p (p HAS 'a')",                     # universal quantifier
        "dist('a', ANY, 2)",                       # dist with ANY
        "SOME p (p HAS 'a' OR p HAS 'b')",         # open OR branches
    ],
)
def test_unsupported_queries_are_rejected(text):
    with pytest.raises(UnsupportedQueryError):
        plan(text)


def test_predicate_variable_must_be_bound_to_a_token():
    with pytest.raises(UnsupportedQueryError):
        plan("SOME p1 SOME p2 (p1 HAS 'a' AND distance(p1, p2, 5) AND p1 HAS 'b')")
