"""Direct unit tests of the fused NPRED block operator."""

from __future__ import annotations

import pytest

from repro.corpus import Collection, ContextNode
from repro.engine.npred_engine import NPredBlockOperator, _BoundPredicate
from repro.engine.operators import ScanOperator, collect_nodes
from repro.exceptions import EvaluationError
from repro.index import InvertedIndex
from repro.model.predicates import (
    DistancePredicate,
    NotDistancePredicate,
    OrderedPredicate,
)


@pytest.fixture
def index() -> InvertedIndex:
    collection = Collection.from_nodes(
        [
            ContextNode.from_tokens(0, ["a", "b"]),
            ContextNode.from_tokens(1, ["a", "x", "x", "x", "x", "x", "b"]),
            ContextNode.from_tokens(2, ["b", "x", "x", "x", "x", "x", "a"]),
            ContextNode.from_tokens(3, ["a"]),
        ]
    )
    return InvertedIndex(collection)


def scans(index, *tokens):
    return [ScanOperator(index.open_cursor(token)) for token in tokens]


def test_block_without_predicates_is_a_node_merge(index):
    operator = NPredBlockOperator(scans(index, "a", "b"), [], ordering=())
    assert collect_nodes(operator) == [0, 1, 2]


def test_negative_predicate_with_both_orderings_covers_all_solutions(index):
    bound = [_BoundPredicate(NotDistancePredicate(), (0, 1), (3,))]
    forward = NPredBlockOperator(scans(index, "a", "b"), bound, ordering=(0, 1))
    backward = NPredBlockOperator(scans(index, "a", "b"), bound, ordering=(1, 0))
    combined = set(collect_nodes(forward)) | set(collect_nodes(backward))
    assert combined == {1, 2}


def test_single_ordering_misses_the_other_direction(index):
    """Documents why multiple threads are necessary: one order finds only the
    solutions compatible with it."""
    bound = [_BoundPredicate(NotDistancePredicate(), (0, 1), (3,))]
    forward = NPredBlockOperator(scans(index, "a", "b"), bound, ordering=(0, 1))
    assert collect_nodes(forward) == [1]


def test_positive_predicates_are_supported_inside_the_block(index):
    bound = [
        _BoundPredicate(OrderedPredicate(), (0, 1), ()),
        _BoundPredicate(DistancePredicate(), (0, 1), (0,)),
    ]
    operator = NPredBlockOperator(scans(index, "a", "b"), bound, ordering=())
    assert collect_nodes(operator) == [0]


def test_constructor_validation(index):
    with pytest.raises(EvaluationError):
        NPredBlockOperator([], [], ordering=())
    with pytest.raises(EvaluationError):
        NPredBlockOperator(scans(index, "a", "b"), [], ordering=(0, 0))
    with pytest.raises(EvaluationError):
        NPredBlockOperator(scans(index, "a", "b"), [], ordering=(5,))
    # A negative predicate must be covered by the ordering.
    bound = [_BoundPredicate(NotDistancePredicate(), (0, 1), (3,))]
    with pytest.raises(EvaluationError):
        NPredBlockOperator(scans(index, "a", "b"), bound, ordering=(0,))


def test_block_is_node_level_only(index):
    operator = NPredBlockOperator(scans(index, "a", "b"), [], ordering=())
    with pytest.raises(EvaluationError):
        operator.advance_position(0, 1)
    with pytest.raises(EvaluationError):
        operator.position(0)
