"""Tests for the NPRED permutation-thread engine."""

from __future__ import annotations

import pytest

from repro.corpus import Collection, ContextNode
from repro.engine.npred_engine import NPredEngine
from repro.engine.naive_engine import NaiveCompEngine
from repro.exceptions import UnsupportedQueryError
from repro.index import InvertedIndex
from repro.languages.parser import LanguageLevel, QueryParser

_PARSER = QueryParser(LanguageLevel.COMP)


@pytest.fixture(scope="module")
def index() -> InvertedIndex:
    collection = Collection.from_nodes(
        [
            # 'a' and 'b' adjacent only
            ContextNode.from_tokens(0, ["a", "b", "x", "x"]),
            # 'a' and 'b' adjacent AND far apart
            ContextNode.from_tokens(1, ["a", "b", "x", "x", "x", "x", "x", "a"]),
            # far apart only (b before a)
            ContextNode.from_tokens(2, ["b", "x", "x", "x", "x", "x", "a"]),
            # only one of the tokens
            ContextNode.from_tokens(3, ["a", "x"]),
            # both tokens, b after a, gap of 2
            ContextNode.from_tokens(4, ["a", "x", "x", "b"]),
        ]
    )
    return InvertedIndex(collection)


@pytest.fixture(scope="module")
def engine(index) -> NPredEngine:
    return NPredEngine(index)


def evaluate(engine: NPredEngine, text: str) -> list[int]:
    return engine.evaluate(_PARSER.parse_closed(text))


NOT_DISTANCE_QUERY = (
    "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND not_distance(p1, p2, 3))"
)


def test_not_distance_finds_far_apart_occurrences(engine):
    # Nodes 1 and 2 have an 'a'/'b' pair separated by more than 3 tokens.
    assert evaluate(engine, NOT_DISTANCE_QUERY) == [1, 2]


def test_not_distance_requires_both_tokens(engine):
    assert 3 not in evaluate(engine, NOT_DISTANCE_QUERY)


def test_not_ordered(engine):
    # not_ordered(p1, p2): 'a' does NOT occur strictly before 'b'.
    result = evaluate(
        engine, "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND not_ordered(p1, p2))"
    )
    # node 1: a@7 after b@1 -> yes; node 2: a@6 after b@0 -> yes.
    assert result == [1, 2]


def test_diffpos_two_occurrences_of_same_token(engine):
    result = evaluate(
        engine, "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'a' AND diffpos(p1, p2))"
    )
    assert result == [1]


def test_mixed_positive_and_negative_predicates(engine):
    # 'a' before 'b' (positive) but more than 1 token apart (negative).
    result = evaluate(
        engine,
        "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND ordered(p1, p2) "
        "AND not_distance(p1, p2, 1))",
    )
    assert result == [4]


def test_positive_only_queries_still_work(engine):
    result = evaluate(
        engine,
        "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND distance(p1, p2, 0))",
    )
    assert result == [0, 1]


def test_and_not_closed_subquery(engine):
    result = evaluate(engine, NOT_DISTANCE_QUERY + " AND NOT 'x'")
    assert result == []


def test_union_of_blocks(engine):
    result = evaluate(engine, NOT_DISTANCE_QUERY + " OR 'b'")
    assert result == [0, 1, 2, 4]


def test_all_orders_and_minimal_orders_agree(index):
    minimal = NPredEngine(index, orders="minimal")
    exhaustive = NPredEngine(index, orders="all")
    for text in [
        NOT_DISTANCE_QUERY,
        "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND not_ordered(p1, p2))",
        "SOME p1 SOME p2 SOME p3 (p1 HAS 'a' AND p2 HAS 'b' AND p3 HAS 'x' "
        "AND not_distance(p1, p2, 2) AND ordered(p1, p3))",
    ]:
        query = _PARSER.parse_closed(text)
        assert minimal.evaluate(query) == exhaustive.evaluate(query)


def test_agrees_with_naive_comp_engine(index):
    npred = NPredEngine(index)
    comp = NaiveCompEngine(index)
    for text in [
        NOT_DISTANCE_QUERY,
        "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND not_ordered(p1, p2))",
        "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'a' AND diffpos(p1, p2))",
        "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND ordered(p1, p2) "
        "AND not_distance(p1, p2, 1))",
    ]:
        query = _PARSER.parse_closed(text)
        assert npred.evaluate(query) == comp.evaluate(query)


def test_invalid_orders_value_rejected(index):
    with pytest.raises(Exception):
        NPredEngine(index, orders="bogus")


def test_rejects_general_predicates(index):
    from repro.model.predicates import FunctionPredicate, PredicateRegistry, default_registry

    registry = default_registry().copy()
    registry.register(FunctionPredicate("weird", 2, lambda p, c: True))
    engine = NPredEngine(index, registry)
    query = QueryParser(LanguageLevel.COMP, registry).parse_closed(
        "SOME p1 SOME p2 (p1 HAS 'a' AND p2 HAS 'b' AND weird(p1, p2))"
    )
    with pytest.raises(UnsupportedQueryError):
        engine.evaluate(query)
