"""Tests for the multi-process scatter path (``workers="process"``).

The tentpole contract: process-pool scatter returns results byte-identical
to the thread pool (ids, bit-identical scores, order, cursor statistics),
caching and incremental appends keep working (an append respills and
restarts the pool), and the mode fails loudly where its memory model cannot
hold -- live shards or scoring models the workers cannot rebuild by name.
"""

from __future__ import annotations

import pytest

from repro.cluster import ScatterGatherExecutor, ShardedIndex
from repro.cluster.live import LiveShardedIndex
from repro.core.query import parse_query
from repro.corpus import Collection
from repro.exceptions import ClusterError, ScoringError
from repro.scoring.base import ScoringModel

TEXTS = [
    "usability testing of efficient software",
    "software measures how well users achieve task completion",
    "efficient task completion with usability in mind",
    "databases support full text search with inverted lists",
    "networks route packets between hosts efficiently",
    "software usability and software testing",
    "usability of software task completion software",
    "efficient inverted lists for efficient search",
]

QUERIES = [
    "'software'",
    "'software' AND 'usability'",
    "'efficient' AND NOT 'networks'",
    "dist('task', 'completion', 2)",
]


def _collection() -> Collection:
    return Collection.from_texts(TEXTS, name="process-scatter")


def _row(result):
    stats = result.cursor_stats
    return (
        result.node_ids,
        result.ranked(),
        result.language_class,
        result.engine,
        stats.as_extended_dict() if stats is not None else None,
    )


@pytest.mark.parametrize("num_shards", [1, 2])
def test_process_results_match_thread_results(num_shards):
    thread = ScatterGatherExecutor(
        ShardedIndex(_collection(), num_shards), scoring="tfidf", cache_size=None
    )
    process = ScatterGatherExecutor(
        ShardedIndex(_collection(), num_shards),
        scoring="tfidf",
        cache_size=None,
        workers="process",
    )
    try:
        for text in QUERIES:
            query = parse_query(text).node
            for top_k in (None, 3):
                expected = thread.execute(query, top_k=top_k)
                actual = process.execute(query, top_k=top_k)
                assert _row(actual) == _row(expected), text
    finally:
        thread.close()
        process.close()


def test_process_execute_many_matches_thread():
    thread = ScatterGatherExecutor(
        ShardedIndex(_collection(), 2), scoring="tfidf", cache_size=None
    )
    process = ScatterGatherExecutor(
        ShardedIndex(_collection(), 2),
        scoring="tfidf",
        cache_size=None,
        workers="process",
    )
    try:
        queries = [parse_query(text).node for text in QUERIES]
        expected = thread.execute_many(queries, top_k=3)
        actual = process.execute_many(queries, top_k=3)
        assert [_row(r) for r in actual] == [_row(r) for r in expected]
    finally:
        thread.close()
        process.close()


def test_process_mode_serves_cache_hits():
    executor = ScatterGatherExecutor(
        ShardedIndex(_collection(), 2), scoring="tfidf", workers="process"
    )
    try:
        query = parse_query("'software' AND 'usability'").node
        first = executor.execute(query)
        second = executor.execute(query)
        assert not first.from_cache
        assert second.from_cache
        assert second.node_ids == first.node_ids
        assert second.ranked() == first.ranked()
    finally:
        executor.close()


def test_append_respills_and_results_stay_equal():
    thread_index = ShardedIndex(_collection(), 2)
    process_index = ShardedIndex(_collection(), 2)
    thread = ScatterGatherExecutor(thread_index, scoring="tfidf", cache_size=None)
    process = ScatterGatherExecutor(
        process_index, scoring="tfidf", cache_size=None, workers="process"
    )
    try:
        query = parse_query("'software'").node
        assert _row(process.execute(query)) == _row(thread.execute(query))
        new_text = "fresh software document about search"
        thread_index.add_text(new_text)
        process_index.add_text(new_text)
        expected = thread.execute(query)
        actual = process.execute(query)
        assert max(actual.node_ids) == len(TEXTS)  # the append is visible
        assert _row(actual) == _row(expected)
    finally:
        thread.close()
        process.close()


def test_explicit_spool_dir_is_used_and_kept(tmp_path):
    executor = ScatterGatherExecutor(
        ShardedIndex(_collection(), 2),
        cache_size=None,
        workers="process",
        spool_dir=tmp_path,
    )
    try:
        executor.execute(parse_query("'software'").node)
        spilled = sorted(tmp_path.glob("epoch-*/shard-*.seg"))
        assert len(spilled) == 2
    finally:
        executor.close()
    assert tmp_path.exists()  # caller-owned directory is not deleted


def test_close_is_idempotent_and_removes_owned_spool():
    executor = ScatterGatherExecutor(
        ShardedIndex(_collection(), 2), cache_size=None, workers="process"
    )
    executor.execute(parse_query("'software'").node)
    spool = executor._spool_root
    assert spool is not None and spool.exists()
    executor.close()
    assert not spool.exists()
    executor.close()  # second close is a no-op


def test_live_sharded_index_is_rejected():
    with pytest.raises(ClusterError, match="static"):
        ScatterGatherExecutor(
            LiveShardedIndex(_collection(), 2), workers="process"
        )


def test_unregistered_scoring_model_is_rejected():
    class LocalModel(ScoringModel):
        name = "local-unregistered"

        def score(self, query, node_id):  # pragma: no cover - never called
            return 0.0

    index = ShardedIndex(_collection(), 2)
    with pytest.raises(ScoringError, match="local-unregistered"):
        ScatterGatherExecutor(index, scoring=LocalModel(index.statistics),
                              workers="process")


def test_unknown_workers_mode_is_rejected():
    with pytest.raises(ClusterError, match="unknown workers mode"):
        ScatterGatherExecutor(ShardedIndex(_collection(), 2), workers="fiber")


# ---------------------------------------------------------------------------
# Spool leak protection: every spilled spool directory is registered for
# cleanup at interpreter exit and on SIGTERM, not just in close().
# ---------------------------------------------------------------------------


def test_spool_is_registered_while_open_and_unregistered_on_close():
    from repro.cluster import scatter

    executor = ScatterGatherExecutor(
        ShardedIndex(_collection(), 2), cache_size=None, workers="process"
    )
    try:
        executor.execute(parse_query("'software'").node)
        spool = executor._spool_root
        assert str(spool) in scatter._SPOOL_REGISTRY
    finally:
        executor.close()
    assert str(spool) not in scatter._SPOOL_REGISTRY


def test_cleanup_registered_spools_sweeps_leaked_directories():
    from repro.cluster import scatter

    executor = ScatterGatherExecutor(
        ShardedIndex(_collection(), 2), cache_size=None, workers="process"
    )
    try:
        executor.execute(parse_query("'software'").node)
        spool = executor._spool_root
        assert spool.exists()
        # Simulate an exit path that never reached close(): the atexit hook
        # calls exactly this function.
        scatter.cleanup_registered_spools()
        assert not spool.exists()
        assert str(spool) not in scatter._SPOOL_REGISTRY
        scatter.cleanup_registered_spools()  # idempotent
    finally:
        executor.close()  # still safe after the sweep


def test_sigterm_removes_spool_directory(tmp_path):
    """A SIGTERM'd process must not leak its packed spool files."""
    import os
    import signal
    import subprocess
    import sys
    from pathlib import Path

    script = """
import sys, time
from repro.cluster import ScatterGatherExecutor, ShardedIndex
from repro.core.query import parse_query
from repro.corpus import Collection

collection = Collection.from_texts([
    "usability testing of efficient software",
    "software measures task completion",
], name="sigterm-spool")
executor = ScatterGatherExecutor(
    ShardedIndex(collection, 2), cache_size=None, workers="process"
)
executor.execute(parse_query("'software'").node)
print(executor._spool_root, flush=True)
while True:
    time.sleep(0.1)
"""
    repo_src = str(Path(__file__).resolve().parents[2] / "src")
    env = dict(os.environ, PYTHONPATH=repo_src, PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [sys.executable, "-c", script],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    try:
        spool = Path(proc.stdout.readline().strip())
        assert spool.exists()
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert proc.returncode == -signal.SIGTERM  # conventional termination
    assert not spool.exists()
