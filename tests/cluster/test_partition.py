"""Tests for the shard-assignment strategies."""

from __future__ import annotations

import pytest

from repro.cluster.partition import (
    HashPartitioner,
    MetadataPartitioner,
    RoundRobinPartitioner,
    balance_report,
    make_partitioner,
    partition_collection,
)
from repro.corpus import Collection, ContextNode
from repro.exceptions import ClusterError


@pytest.fixture
def collection() -> Collection:
    nodes = [
        ContextNode.from_text(
            idx, f"document number {idx}", metadata={"tenant": f"t{idx % 3}"}
        )
        for idx in range(30)
    ]
    return Collection.from_nodes(nodes, "partition-test")


def test_make_partitioner_resolves_names():
    assert isinstance(make_partitioner("hash"), HashPartitioner)
    assert isinstance(make_partitioner("round-robin"), RoundRobinPartitioner)
    metadata = make_partitioner("metadata:tenant")
    assert isinstance(metadata, MetadataPartitioner)
    assert metadata.key == "tenant"


def test_make_partitioner_passes_instances_through():
    instance = HashPartitioner()
    assert make_partitioner(instance) is instance


def test_make_partitioner_rejects_unknown_names():
    with pytest.raises(ClusterError):
        make_partitioner("alphabetical")
    with pytest.raises(ClusterError):
        make_partitioner(42)  # type: ignore[arg-type]
    with pytest.raises(ClusterError):
        make_partitioner("metadata:")


def test_partition_preserves_node_ids_and_covers_collection(collection):
    shards, assignment = partition_collection(collection, 4, "hash")
    assert len(shards) == 4
    covered = sorted(nid for shard in shards for nid in shard.node_ids())
    assert covered == collection.node_ids()
    for shard_id, shard in enumerate(shards):
        for nid in shard.node_ids():
            assert assignment[nid] == shard_id


def test_partition_is_deterministic(collection):
    first, _ = partition_collection(collection, 4, "hash")
    second, _ = partition_collection(collection, 4, "hash")
    assert [s.node_ids() for s in first] == [s.node_ids() for s in second]


def test_round_robin_is_maximally_balanced(collection):
    shards, _ = partition_collection(collection, 4, "round-robin")
    sizes = [len(shard) for shard in shards]
    assert max(sizes) - min(sizes) <= 1


def test_hash_partitioner_spreads_consecutive_ids(collection):
    shards, _ = partition_collection(collection, 4, "hash")
    sizes = [len(shard) for shard in shards]
    # Every shard gets a reasonable share of 30 consecutive ids.
    assert min(sizes) >= 1
    assert max(sizes) <= 30 - 3


def test_metadata_partitioner_colocates_equal_values(collection):
    shards, assignment = partition_collection(collection, 5, "metadata:tenant")
    shard_of_tenant: dict[str, int] = {}
    for node in collection:
        tenant = node.metadata["tenant"]
        shard = assignment[node.node_id]
        assert shard_of_tenant.setdefault(tenant, shard) == shard
    covered = sorted(nid for shard in shards for nid in shard.node_ids())
    assert covered == collection.node_ids()


def test_metadata_partitioner_falls_back_for_missing_key(collection):
    bare = ContextNode.from_text(100, "no tenant metadata here")
    collection.add(bare)
    _, assignment = partition_collection(collection, 5, "metadata:tenant")
    assert 0 <= assignment[100] < 5


def test_partition_rejects_bad_shard_count(collection):
    with pytest.raises(ClusterError):
        partition_collection(collection, 0)


def test_partition_single_shard_is_identity(collection):
    shards, assignment = partition_collection(collection, 1)
    assert len(shards) == 1
    assert shards[0].node_ids() == collection.node_ids()
    assert set(assignment.values()) == {0}


def test_balance_report_metrics():
    report = balance_report([10, 10, 10, 10])
    assert report["imbalance"] == 0.0
    skewed = balance_report([30, 10])
    assert skewed["max"] == 30
    assert skewed["imbalance"] == pytest.approx(0.5)
    assert balance_report([])["shards"] == 0
