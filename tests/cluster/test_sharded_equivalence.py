"""Sharded-vs-single equivalence: identical node ids and scores.

The acceptance contract of the cluster subsystem: for every query class of
the paper's hierarchy (BOOL including negation, PPRED, NPRED), both cursor
access modes and every scoring backend, scatter-gather execution over any
number of shards returns exactly the node ids of the single-index path and
scores equal to within 1e-9.

Two layers of tests:

* deterministic sweeps over the workload-generator queries (the exact shapes
  the paper's experiments use) at shard counts {1, 2, 4, 7};
* a hypothesis property over randomly generated small collections and random
  BOOL/DIST queries, which also varies the partitioner.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.workload import workload_queries
from repro.core.engine import FullTextEngine
from repro.corpus import Collection, ContextNode
from repro.corpus.synthetic import SyntheticSpec, generate_collection
from repro.languages import ast

SHARD_COUNTS = (1, 2, 4, 7)

#: (series, forced engine) pairs covering the complexity hierarchy.
ENGINE_SERIES = [
    ("BOOL", "bool"),
    ("POSITIVE", "ppred"),
    ("POSITIVE", "npred"),
    ("NEGATIVE", "npred"),
]


@pytest.fixture(scope="module")
def corpus() -> Collection:
    spec = SyntheticSpec(
        num_nodes=60,
        tokens_per_node=50,
        vocabulary_size=180,
        query_tokens=("alpha", "beta", "gamma"),
        query_token_document_frequency=0.5,
        query_token_positions_per_entry=3,
        sentence_length=8,
        paragraph_length=20,
        seed=13,
    )
    return generate_collection(spec, name="equivalence-corpus")


@pytest.fixture(scope="module")
def queries() -> dict[str, ast.QueryNode]:
    return workload_queries(["alpha", "beta", "gamma"], 3, 2)


def assert_equivalent(single: FullTextEngine, sharded: FullTextEngine, query, engine):
    expected = single.search(query, engine=engine)
    got = sharded.search(query, engine=engine)
    assert got.node_ids == expected.node_ids
    for theirs, ours in zip(expected.results, got.results):
        assert ours.node_id == theirs.node_id
        assert ours.score == pytest.approx(theirs.score, abs=1e-9)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("series,engine", ENGINE_SERIES)
@pytest.mark.parametrize("access_mode", ["paper", "fast"])
def test_workload_equivalence_unscored(corpus, queries, shards, series, engine, access_mode):
    single = FullTextEngine.from_collection(corpus, access_mode=access_mode)
    sharded = FullTextEngine.from_collection(
        corpus, access_mode=access_mode, shards=shards
    )
    assert_equivalent(single, sharded, queries[series], engine)
    sharded.close()


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("scoring", ["tfidf", "probabilistic"])
def test_workload_equivalence_scored(corpus, queries, shards, scoring):
    single = FullTextEngine.from_collection(corpus, scoring=scoring)
    sharded = FullTextEngine.from_collection(corpus, scoring=scoring, shards=shards)
    for series, engine in ENGINE_SERIES:
        assert_equivalent(single, sharded, queries[series], engine)
    sharded.close()


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_batch_equivalence(corpus, queries, shards):
    single = FullTextEngine.from_collection(corpus, scoring="tfidf")
    sharded = FullTextEngine.from_collection(corpus, scoring="tfidf", shards=shards)
    batch = list(queries.values()) + list(queries.values())  # with repeats
    expected = single.search_many(batch, top_k=5)
    got = sharded.search_many(batch, top_k=5)
    for theirs, ours in zip(expected, got):
        assert ours.node_ids == theirs.node_ids
        for a, b in zip(theirs.results, ours.results):
            assert b.score == pytest.approx(a.score, abs=1e-9)
    sharded.close()


# ------------------------------------------------------- hypothesis property
TOKENS = ["a", "b", "c", "d"]

documents = st.lists(st.sampled_from(TOKENS), min_size=0, max_size=10)


@st.composite
def collections(draw) -> Collection:
    docs = draw(st.lists(documents, min_size=1, max_size=9))
    nodes = [
        ContextNode.from_tokens(idx, tokens, sentence_length=3, paragraph_length=5)
        for idx, tokens in enumerate(docs)
    ]
    return Collection.from_nodes(nodes)


@st.composite
def bool_queries(draw, depth: int = 2) -> ast.QueryNode:
    if depth == 0:
        return ast.TokenQuery(draw(st.sampled_from(TOKENS)))
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return ast.TokenQuery(draw(st.sampled_from(TOKENS)))
    left = draw(bool_queries(depth=depth - 1))
    right = draw(bool_queries(depth=depth - 1))
    if choice == 1:
        return ast.AndQuery(left, right)
    if choice == 2:
        return ast.OrQuery(left, right)
    return ast.AndQuery(left, ast.NotQuery(right))


@settings(max_examples=40, deadline=None)
@given(
    collection=collections(),
    query=bool_queries(),
    shards=st.sampled_from(SHARD_COUNTS),
    partitioner=st.sampled_from(["hash", "round-robin"]),
)
def test_random_queries_equivalent_across_shard_counts(
    collection, query, shards, partitioner
):
    single = FullTextEngine.from_collection(collection, scoring="tfidf")
    sharded = FullTextEngine.from_collection(
        collection, scoring="tfidf", shards=shards, partitioner=partitioner
    )
    expected = single.search(query)
    got = sharded.search(query)
    assert got.node_ids == expected.node_ids
    for theirs, ours in zip(expected.results, got.results):
        assert ours.score == pytest.approx(theirs.score, abs=1e-9)
    sharded.close()
