"""Tests for LiveShardedIndex: routed writes + generation-keyed caching."""

from __future__ import annotations

import pytest

from repro.cluster import LiveShardedIndex, ShardedIndex
from repro.core.engine import FullTextEngine
from repro.corpus import Collection
from repro.exceptions import ClusterError
from repro.segments import LiveIndex


@pytest.fixture
def collection() -> Collection:
    return Collection.from_texts(
        [
            "usability of software systems",
            "software task completion",
            "task analysis methods",
            "efficient software testing",
            "testing usability in practice",
        ],
        name="live-cluster",
    )


def test_shards_are_live_indexes(collection):
    sharded = LiveShardedIndex(collection, 3)
    assert all(isinstance(shard.index, LiveIndex) for shard in sharded)
    sharded.validate()
    sharded.close()


def test_writes_route_to_the_owning_shard(collection):
    sharded = LiveShardedIndex(collection, 3, flush_threshold=2)
    new_id = sharded.add_text("a freshly added document")
    owner = sharded.shard_of(new_id)
    assert new_id in sharded.shards[owner].index.collection
    sharded.update_text(0, "rewritten content entirely")
    assert sharded.collection.get(0).tokens == ["rewritten", "content", "entirely"]
    assert sharded.shards[sharded.shard_of(0)].index.collection.get(0).tokens == [
        "rewritten", "content", "entirely",
    ]
    assert sharded.delete_node(1)
    assert not sharded.delete_node(1)
    assert 1 not in sharded.collection
    sharded.validate()
    sharded.close()


def test_update_unknown_node_raises(collection):
    sharded = LiveShardedIndex(collection, 2)
    with pytest.raises(ClusterError):
        sharded.update_text(99, "nope")
    sharded.close()


def test_generation_counts_mutations_not_maintenance(collection):
    sharded = LiveShardedIndex(collection, 2, flush_threshold=2)
    start = sharded.cache_generation()
    sharded.add_text("one more document")
    sharded.update_text(0, "different text")
    sharded.delete_node(2)
    assert sharded.cache_generation() == start + 3
    generation = sharded.cache_generation()
    sharded.flush()
    sharded.compact()
    assert sharded.cache_generation() == generation  # maintenance is free
    sharded.close()


def test_static_sharded_index_has_no_generation(collection):
    sharded = ShardedIndex(collection, 2)
    assert sharded.cache_generation() is None


def test_cache_survives_flush_and_compact_but_not_mutations(collection):
    engine = FullTextEngine.from_collection(
        collection, shards=2, live=True, flush_threshold=2, cache_size=32
    )
    first = engine.search("'software'")
    assert first.metadata["cache"] == "miss"
    assert engine.search("'software'").metadata["cache"] == "hit"
    engine.flush()
    engine.compact()
    # Maintenance does not change the generation: still a hit.
    assert engine.search("'software'").metadata["cache"] == "hit"
    engine.add_document("software again")
    # A mutation moves the generation: the old entry is unreachable.
    refreshed = engine.search("'software'")
    assert refreshed.metadata["cache"] == "miss"
    stats = engine.cache_stats()
    assert stats["invalidations"] == 0  # never flushed wholesale
    engine.close()


def test_cached_results_are_correct_after_interleaved_mutations(collection):
    engine = FullTextEngine.from_collection(
        collection, shards=2, live=True, flush_threshold=2, cache_size=32
    )
    assert engine.search("'software'").node_ids == [0, 1, 3]
    engine.delete_document(0)
    assert engine.search("'software'").node_ids == [1, 3]
    engine.update_document(1, "no relevant tokens")
    assert engine.search("'software'").node_ids == [3]
    new_id = engine.add_document("software strikes back")
    assert engine.search("'software'").node_ids == [3, new_id]
    engine.close()


def test_memory_footprint_aggregates_shards(collection):
    static = ShardedIndex(collection, 3)
    footprint = static.memory_footprint()
    assert footprint["total_bytes"] > 0
    assert footprint["total_bytes"] == sum(
        footprint[key] for key in footprint if key != "total_bytes"
    )
    per_shard = sum(
        shard.index.memory_footprint()["total_bytes"] for shard in static
    )
    assert footprint["total_bytes"] == per_shard

    live = LiveShardedIndex(collection, 3)
    assert live.memory_footprint()["total_bytes"] > 0
    live.close()


def test_segment_stats_tag_rows_with_shard(collection):
    sharded = LiveShardedIndex(collection, 2, flush_threshold=2)
    sharded.add_text("extra doc lands in some shard")
    rows = sharded.segment_stats()
    assert rows and all("shard" in row for row in rows)
    assert {row["shard"] for row in rows} <= {0, 1}
    sharded.close()


def test_persistence_round_trip(tmp_path, collection):
    directory = tmp_path / "cluster"
    sharded = LiveShardedIndex(
        collection, 2, directory=directory, flush_threshold=2
    )
    new_id = sharded.add_text("persisted document")
    sharded.update_text(0, "revised revision")
    sharded.delete_node(1)
    sharded.close()

    reopened = LiveShardedIndex.open(directory, 2, flush_threshold=2)
    assert reopened.node_ids() == [0, 2, 3, 4, new_id]
    assert reopened.collection.get(0).tokens == ["revised", "revision"]
    assert reopened.shard_of(new_id) == sharded.shard_of(new_id)
    reopened.validate()
    reopened.close()


def test_open_rejects_wrong_shard_count(tmp_path, collection):
    from repro.exceptions import StorageError

    directory = tmp_path / "cluster"
    LiveShardedIndex(collection, 4, directory=directory).close()
    with pytest.raises(StorageError, match="4-shard"):
        LiveShardedIndex.open(directory, 2)
    reopened = LiveShardedIndex.open(directory, 4)
    assert reopened.node_count() == len(collection)
    reopened.close()


def test_scoring_refreshes_after_update_and_delete(collection):
    engine = FullTextEngine.from_collection(
        collection, shards=2, live=True, scoring="tfidf"
    )
    before = engine.scoring.statistics.node_count
    engine.delete_document(0)
    engine.search("'software'")  # triggers the stale-model refresh
    assert engine.scoring.statistics.node_count == before - 1
    engine.close()
