"""Pruned top-k == rank-then-truncate, across the whole execution matrix.

The exactness contract of the top-k pushdown (see :mod:`repro.engine.topk`):
for every engine (BOOL / PPRED / NPRED), both cursor access modes, both
scoring backends, shard counts {1, 4} and both index flavours (static and
live-with-mutations), a ``top_k=k`` search must return *exactly* the first
``k`` entries of the unpruned ranking -- same node ids, bit-identical
scores, same order -- while the reported match count stays complete.

Deterministic sweeps over the paper's workload queries pin the matrix; a
hypothesis property hammers random corpora, random BOOL queries and random
``k`` on top.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.workload import workload_queries
from repro.core.engine import FullTextEngine
from repro.corpus import Collection, ContextNode
from repro.corpus.synthetic import SyntheticSpec, generate_collection
from repro.languages import ast

#: (series, forced engine) pairs covering the complexity hierarchy.
ENGINE_SERIES = [
    ("BOOL", "bool"),
    ("POSITIVE", "ppred"),
    ("POSITIVE", "npred"),
    ("NEGATIVE", "npred"),
]

K_VALUES = (1, 3, 10)


@pytest.fixture(scope="module")
def corpus() -> Collection:
    spec = SyntheticSpec(
        num_nodes=60,
        tokens_per_node=50,
        vocabulary_size=180,
        query_tokens=("alpha", "beta", "gamma"),
        query_token_document_frequency=0.5,
        query_token_positions_per_entry=3,
        sentence_length=8,
        paragraph_length=20,
        seed=29,
    )
    return generate_collection(spec, name="topk-equivalence-corpus")


@pytest.fixture(scope="module")
def queries() -> dict[str, ast.QueryNode]:
    return workload_queries(["alpha", "beta", "gamma"], 3, 2)


def _build_engine(
    corpus: Collection,
    scoring: str,
    access_mode: str,
    shards: int,
    live: bool,
) -> FullTextEngine:
    engine = FullTextEngine.from_collection(
        corpus,
        scoring=scoring,
        access_mode=access_mode,
        shards=shards,
        live=live,
        # The cache would serve the top-k request straight from the warm
        # full ranking (prefix serving); disable it so every search below
        # genuinely exercises the per-shard pushdown.
        cache_size=0,
    )
    if live:
        # Make the live index earn its name: extra segments, a tombstone
        # and an in-place rewrite, so the multi-segment cursors and the
        # survivor-exact statistics are what the pushdown actually sees.
        engine.add_document("alpha beta gamma fresh segment document")
        engine.add_document("beta beta alpha gamma gamma alpha")
        engine.flush()
        engine.delete_document(7)
        engine.update_document(11, "gamma alpha beta rewritten alpha")
        engine.add_document("alpha gamma beta after the flush")
    return engine


def assert_pushdown_exact(engine: FullTextEngine, query, forced_engine: str):
    full = engine.search(query, engine=forced_engine)
    full_pairs = [(r.node_id, r.score) for r in full.results]
    for k in K_VALUES:
        pruned = engine.search(query, engine=forced_engine, top_k=k)
        pruned_pairs = [(r.node_id, r.score) for r in pruned.results]
        assert pruned_pairs == full_pairs[:k]
        assert pruned.total_matches == full.total_matches


@pytest.mark.parametrize("live", [False, True], ids=["static", "live"])
@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("scoring", ["tfidf", "probabilistic"])
@pytest.mark.parametrize("access_mode", ["paper", "fast"])
def test_pushdown_matrix(corpus, queries, access_mode, scoring, shards, live):
    engine = _build_engine(corpus, scoring, access_mode, shards, live)
    try:
        for series, forced_engine in ENGINE_SERIES:
            assert_pushdown_exact(engine, queries[series], forced_engine)
    finally:
        engine.close()


def test_pushdown_exact_in_batches(corpus, queries):
    for shards in (1, 4):
        engine = FullTextEngine.from_collection(
            corpus, scoring="tfidf", shards=shards, cache_size=0
        )
        batch = [queries[series] for series, _ in ENGINE_SERIES]
        full = engine.search_many(batch)
        pruned = engine.search_many(batch, top_k=3)
        for complete, cut in zip(full, pruned):
            assert [(r.node_id, r.score) for r in cut.results] == [
                (r.node_id, r.score) for r in complete.results
            ][:3]
            assert cut.total_matches == complete.total_matches
        engine.close()


# ------------------------------------------------------- hypothesis property
TOKENS = ["a", "b", "c", "d"]

documents = st.lists(st.sampled_from(TOKENS), min_size=0, max_size=10)


@st.composite
def collections(draw) -> Collection:
    docs = draw(st.lists(documents, min_size=1, max_size=9))
    nodes = [
        ContextNode.from_tokens(idx, tokens, sentence_length=3, paragraph_length=5)
        for idx, tokens in enumerate(docs)
    ]
    return Collection.from_nodes(nodes)


@st.composite
def bool_queries(draw, depth: int = 2) -> ast.QueryNode:
    if depth == 0:
        return ast.TokenQuery(draw(st.sampled_from(TOKENS)))
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return ast.TokenQuery(draw(st.sampled_from(TOKENS)))
    left = draw(bool_queries(depth=depth - 1))
    right = draw(bool_queries(depth=depth - 1))
    if choice == 1:
        return ast.AndQuery(left, right)
    if choice == 2:
        return ast.OrQuery(left, right)
    return ast.AndQuery(left, ast.NotQuery(right))


@settings(max_examples=50, deadline=None)
@given(
    collection=collections(),
    query=bool_queries(),
    k=st.integers(min_value=1, max_value=12),
    shards=st.sampled_from([1, 4]),
    scoring=st.sampled_from(["tfidf", "probabilistic"]),
    live=st.booleans(),
)
def test_random_queries_pruned_prefix_is_exact(
    collection, query, k, shards, scoring, live
):
    engine = FullTextEngine.from_collection(
        collection, scoring=scoring, shards=shards, live=live, cache_size=0
    )
    try:
        full = engine.search(query)
        pruned = engine.search(query, top_k=k)
        assert [(r.node_id, r.score) for r in pruned.results] == [
            (r.node_id, r.score) for r in full.results
        ][:k]
        assert pruned.total_matches == full.total_matches
    finally:
        engine.close()
