"""Tests for the sharded index facade and aggregated statistics."""

from __future__ import annotations

import pytest

from repro.cluster import AggregatedStatistics, ShardedIndex
from repro.corpus import Collection
from repro.exceptions import ClusterError, IndexError_
from repro.index import InvertedIndex


@pytest.fixture
def collection() -> Collection:
    texts = [
        "usability testing of efficient software",
        "software measures how well users achieve task completion",
        "efficient task completion with usability in mind",
        "databases support full text search with inverted lists",
        "networks route packets between hosts efficiently",
        "software usability and software testing",
        "a short note",
    ]
    return Collection.from_texts(texts, name="sharded-test")


def test_shards_cover_the_collection_exactly(collection):
    sharded = ShardedIndex(collection, 3)
    sharded.validate()
    covered = sorted(
        nid for shard in sharded for nid in shard.index.node_ids()
    )
    assert covered == collection.node_ids()
    assert sharded.num_shards == 3
    assert sharded.node_count() == len(collection)


def test_shard_of_matches_partition(collection):
    sharded = ShardedIndex(collection, 3, "round-robin")
    for nid in collection.node_ids():
        shard_id = sharded.shard_of(nid)
        assert nid in sharded.shards[shard_id].index.collection
    with pytest.raises(ClusterError):
        sharded.shard_of(999)


def test_rejects_bad_shard_count(collection):
    with pytest.raises(ClusterError):
        ShardedIndex(collection, 0)


def test_aggregated_statistics_match_single_index(collection):
    single = InvertedIndex(collection).statistics
    for shards in (1, 2, 4, 7):
        aggregated = ShardedIndex(collection, shards).statistics
        assert isinstance(aggregated, AggregatedStatistics)
        assert aggregated.node_count == single.node_count
        assert aggregated.vocabulary() == single.vocabulary()
        for token in sorted(single.vocabulary()):
            assert aggregated.document_frequency(token) == single.document_frequency(token)
            assert aggregated.idf(token) == pytest.approx(single.idf(token), abs=1e-12)
        for nid in collection.node_ids():
            assert aggregated.unique_token_count(nid) == single.unique_token_count(nid)
            assert aggregated.node_length(nid) == single.node_length(nid)
            assert aggregated.node_l2_norm(nid) == pytest.approx(
                single.node_l2_norm(nid), abs=1e-12
            )


def test_aggregated_complexity_parameters_are_global(collection):
    single = InvertedIndex(collection).statistics.complexity_parameters()
    sharded = ShardedIndex(collection, 3).statistics.complexity_parameters()
    assert sharded.as_dict() == single.as_dict()


def test_document_frequency_sums_over_shards(collection):
    sharded = ShardedIndex(collection, 4)
    assert sharded.document_frequency("software") == 3
    assert sharded.document_frequency("absent-token") == 0
    assert "software" in sharded.tokens()


def test_add_text_routes_to_one_shard_and_refreshes_statistics(collection):
    sharded = ShardedIndex(collection, 3)
    before_df = sharded.document_frequency("zebra")
    node_id = sharded.add_text("a zebra crossed the road")
    assert node_id == 7
    shard_id = sharded.shard_of(node_id)
    assert node_id in sharded.shards[shard_id].index.collection
    assert sharded.document_frequency("zebra") == before_df + 1
    assert sharded.node_count() == 8
    sharded.validate()


def test_add_node_enforces_increasing_ids(collection):
    from repro.corpus import ContextNode

    sharded = ShardedIndex(collection, 2)
    with pytest.raises(IndexError_):
        sharded.add_node(ContextNode.from_text(3, "duplicate id"))


def test_invalidation_listeners_fire_on_updates(collection):
    sharded = ShardedIndex(collection, 2)
    calls = []
    listener = lambda: calls.append(1)  # noqa: E731
    sharded.add_invalidation_listener(listener)
    sharded.add_text("new document")
    sharded.add_text("another document")
    assert len(calls) == 2
    sharded.remove_invalidation_listener(listener)
    sharded.remove_invalidation_listener(listener)  # no-op when absent
    sharded.add_text("a third document")
    assert len(calls) == 2


def test_closed_executor_deregisters_its_listeners(collection):
    from repro.cluster import ScatterGatherExecutor

    sharded = ShardedIndex(collection, 2)
    scatter = ScatterGatherExecutor(sharded, scoring="tfidf", cache_size=8)
    # cache invalidation + scoring staleness + planner staleness
    assert len(sharded._invalidation_listeners) == 3
    scatter.close()
    assert sharded._invalidation_listeners == []


def test_add_node_rejects_out_of_range_partitioner_assignment(collection):
    from repro.cluster.partition import Partitioner
    from repro.corpus import ContextNode

    class Broken(Partitioner):
        name = "broken"

        def assign(self, node, ordinal, num_shards):
            return -1

    sharded = ShardedIndex(collection, 2)
    sharded.partitioner = Broken()
    with pytest.raises(ClusterError, match="assigned node"):
        sharded.add_node(ContextNode.from_text(100, "misrouted"))


def test_shard_stats_shape(collection):
    stats = ShardedIndex(collection, 3).shard_stats()
    assert [row["shard"] for row in stats] == [0, 1, 2]
    assert sum(row["nodes"] for row in stats) == len(collection)
    for row in stats:
        assert {"nodes", "tokens", "postings", "positions", "memory_bytes"} <= set(row)


def test_empty_shards_are_legal():
    tiny = Collection.from_texts(["only one document"], name="tiny")
    sharded = ShardedIndex(tiny, 4)
    sharded.validate()
    assert sum(len(shard.collection) for shard in sharded) == 1
