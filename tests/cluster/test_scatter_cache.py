"""Tests for the scatter-gather executor, heap merge and result cache."""

from __future__ import annotations

import pytest

from repro.cluster import (
    MergedEvaluationResult,
    QueryCache,
    ScatterGatherExecutor,
    ShardedIndex,
    merge_cursor_stats,
    merge_ranked,
)
from repro.core.engine import FullTextEngine
from repro.core.query import parse_query
from repro.corpus import Collection
from repro.engine.executor import Executor
from repro.exceptions import ClusterError
from repro.index import InvertedIndex
from repro.index.cursor import CursorStats


@pytest.fixture(scope="module")
def collection() -> Collection:
    texts = [
        "usability testing of efficient software",
        "software measures how well users achieve task completion",
        "efficient task completion with usability in mind",
        "databases support full text search with inverted lists",
        "networks route packets between hosts efficiently",
        "software usability and software testing",
        "usability of software task completion software",
        "efficient inverted lists for efficient search",
    ]
    return Collection.from_texts(texts, name="scatter-test")


QUERIES = [
    "'software'",
    "'software' AND 'usability'",
    "'software' OR 'databases'",
    "'efficient' AND NOT 'networks'",
    "dist('task', 'completion', 2)",
]


# ------------------------------------------------------------------- scatter
@pytest.mark.parametrize("num_shards", [1, 2, 3, 5])
@pytest.mark.parametrize("query_text", QUERIES)
def test_scatter_matches_single_index(collection, num_shards, query_text):
    single = Executor(InvertedIndex(collection))
    scatter = ScatterGatherExecutor(ShardedIndex(collection, num_shards))
    query = parse_query(query_text).node
    expected = single.execute(query)
    merged = scatter.execute(query)
    assert merged.node_ids == expected.node_ids
    assert merged.language_class == expected.language_class
    assert merged.engine == expected.engine
    assert merged.shard_count == num_shards
    scatter.close()


def test_sequential_fallback_equals_pooled_execution(collection):
    query = parse_query("'software' AND 'usability'").node
    pooled = ScatterGatherExecutor(ShardedIndex(collection, 3))
    sequential = ScatterGatherExecutor(ShardedIndex(collection, 3), max_workers=1)
    assert pooled.execute(query).node_ids == sequential.execute(query).node_ids
    assert sequential._pool is None  # the fallback never builds a pool
    pooled.close()
    sequential.close()


def test_execute_many_matches_repeated_execute(collection):
    scatter = ScatterGatherExecutor(ShardedIndex(collection, 3), cache_size=None)
    queries = [parse_query(text).node for text in QUERIES]
    batch = scatter.execute_many(queries)
    singles = [scatter.execute(query) for query in queries]
    assert [r.node_ids for r in batch] == [r.node_ids for r in singles]
    scatter.close()


def test_cursor_stats_are_summed_over_shards(collection):
    query = parse_query("'software' AND 'usability'").node
    scatter = ScatterGatherExecutor(ShardedIndex(collection, 3), cache_size=None)
    merged = scatter.execute(query)
    per_shard = [
        executor.execute(query).cursor_stats
        for executor in scatter._shard_executors
    ]
    assert merged.cursor_stats is not None
    assert merged.cursor_stats.next_entry_calls == sum(
        stats.next_entry_calls for stats in per_shard if stats is not None
    )
    scatter.close()


def test_top_k_truncates_ranking_but_not_match_count(collection):
    scatter = ScatterGatherExecutor(
        ShardedIndex(collection, 3), scoring="tfidf", cache_size=None
    )
    query = parse_query("'software'").node
    full = scatter.execute(query)
    top = scatter.execute(query, top_k=2)
    assert len(top.ranked()) == 2
    assert top.ranked() == full.ranked()[:2]
    assert top.node_ids == full.node_ids  # match count stays exact
    scatter.close()


# --------------------------------------------------------------------- merge
def test_merge_ranked_orders_by_score_then_id():
    merged = merge_ranked([[(1, 0.5), (3, 0.2)], [(2, 0.5), (4, 0.4)]])
    assert merged == [(1, 0.5), (2, 0.5), (4, 0.4), (3, 0.2)]
    assert merge_ranked([[(1, 0.5), (3, 0.2)], [(2, 0.5)]], top_k=2) == [
        (1, 0.5),
        (2, 0.5),
    ]


@pytest.mark.parametrize("bad_top_k", [0, -1, -7])
def test_merge_ranked_rejects_non_positive_top_k(bad_top_k):
    with pytest.raises(ValueError):
        merge_ranked([[(1, 0.5)]], top_k=bad_top_k)


def test_merge_cursor_stats_handles_missing_reports():
    assert merge_cursor_stats([None, None]) is None
    merged = merge_cursor_stats([CursorStats(next_entry_calls=2), None,
                                 CursorStats(next_entry_calls=3)])
    assert merged is not None and merged.next_entry_calls == 5


# --------------------------------------------------------------------- cache
def test_cache_lru_eviction_and_stats():
    cache = QueryCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes 'a'
    cache.put("c", 3)  # evicts 'b'
    assert cache.get("b") is None
    assert cache.get("c") == 3
    stats = cache.stats()
    assert stats["evictions"] == 1
    assert stats["hits"] == 2
    assert stats["misses"] == 1
    assert 0.0 < stats["hit_rate"] < 1.0


def test_cache_rejects_bad_capacity():
    with pytest.raises(ClusterError):
        QueryCache(capacity=0)


def test_cache_is_thread_safe_under_concurrent_mixed_traffic():
    """get / put / invalidate / stats hammered from worker threads.

    The cache is shared by scatter-gather shard workers and ``search_many``
    batches, so every public entry point must hold the lock; this would
    corrupt the OrderedDict (or trip 'dictionary changed size during
    iteration') if any path skipped it.
    """
    import threading

    cache = QueryCache(capacity=16)
    errors: list[BaseException] = []
    barrier = threading.Barrier(8)

    def worker(worker_id: int) -> None:
        try:
            barrier.wait()
            for i in range(400):
                key = (worker_id * 7 + i) % 40
                cache.put(key, i)
                cache.get((key + 3) % 40)
                if i % 17 == 0:
                    cache.invalidate()
                stats = cache.stats()
                assert stats["size"] <= stats["capacity"]
                len(cache)
                (key in cache)
        except BaseException as exc:  # pragma: no cover - failure capture
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    final = cache.stats()
    assert final["hits"] + final["misses"] == 8 * 400


def test_scatter_caches_results_and_marks_hits(collection):
    scatter = ScatterGatherExecutor(ShardedIndex(collection, 2), cache_size=8)
    query = parse_query("'software' AND 'usability'").node
    first = scatter.execute(query)
    second = scatter.execute(query)
    assert not first.from_cache
    assert second.from_cache
    assert second.node_ids == first.node_ids
    assert scatter.cache_stats()["hits"] == 1
    scatter.close()


def test_cache_serves_smaller_k_from_wider_entry(collection):
    sharded = ShardedIndex(collection, 2)
    scatter = ScatterGatherExecutor(sharded, scoring="tfidf", cache_size=8)
    query = parse_query("'software'").node
    full = scatter.execute(query)
    # Any k is a prefix of the cached full ranking: a genuine hit.
    top = scatter.execute(query, top_k=2)
    assert top.from_cache is True
    assert top.ranked() == full.ranked()[:2]
    assert scatter.cache_stats()["hits"] == 1
    scatter.close()


def test_cache_widens_entry_on_larger_k_request(collection):
    sharded = ShardedIndex(collection, 2)
    scatter = ScatterGatherExecutor(sharded, scoring="tfidf", cache_size=8)
    query = parse_query("'software'").node
    scatter.execute(query, top_k=1)
    # A wider request cannot be served by the k=1 prefix: a miss that
    # recomputes and overwrites the entry with the wider ranking...
    wider = scatter.execute(query, top_k=2)
    assert wider.from_cache is False
    assert len(wider.ranked()) == 2
    # ...after which both the wider and the narrower k are hits.
    assert scatter.execute(query, top_k=2).from_cache is True
    assert scatter.execute(query, top_k=1).from_cache is True
    assert scatter.execute(query, top_k=1).ranked() == wider.ranked()[:1]
    # The full ranking is still wider than any pruned entry: a miss again.
    assert scatter.execute(query).from_cache is False
    assert scatter.execute(query).from_cache is True
    stats = scatter.cache_stats()
    assert stats["hits"] == 4 and stats["misses"] == 3
    scatter.close()


def test_incremental_update_rebinds_scoring_to_fresh_statistics():
    texts = [
        "software usability testing",
        "task completion software",
        "inverted lists for search",
    ]
    fresh = Collection.from_texts(texts, name="rebind-test")
    sharded = ShardedIndex(fresh, 2)
    scatter = ScatterGatherExecutor(sharded, scoring="tfidf", cache_size=8)
    query = parse_query("'usability'").node
    scatter.execute(query)
    sharded.add_text("zebra usability software testing")
    updated = scatter.execute(query)
    # Reference: a single-index executor built from scratch over the updated
    # corpus -- the post-update scores must use the fresh global df/N.
    from repro.scoring.base import get_model

    rebuilt = InvertedIndex(Collection.from_nodes(list(fresh), name="rebuilt"))
    reference = Executor(rebuilt, scoring=get_model("tfidf", rebuilt.statistics))
    expected = reference.execute(query)
    assert [nid for nid, _ in updated.ranked()] == [
        nid for nid, _ in expected.ranked()
    ]
    for (_, ours), (_, theirs) in zip(updated.ranked(), expected.ranked()):
        assert ours == pytest.approx(theirs, abs=1e-12)
    scatter.close()


def test_execute_many_duplicates_never_alias_after_in_batch_eviction(collection):
    # Capacity 1: the duplicate's entry is evicted by the second unique
    # query's put within the same batch; the fallback must still hand out
    # an independent copy.
    scatter = ScatterGatherExecutor(ShardedIndex(collection, 2), cache_size=1)
    q1 = parse_query("'software'").node
    q2 = parse_query("'usability'").node
    first, _, dup = scatter.execute_many([q1, q2, q1])
    assert dup.node_ids == first.node_ids
    assert dup is not first
    dup.node_ids.clear()
    assert first.node_ids != []
    scatter.close()


def test_execute_many_counts_in_batch_duplicates_as_hits(collection):
    scatter = ScatterGatherExecutor(ShardedIndex(collection, 2), cache_size=8)
    query = parse_query("'software'").node
    batch = scatter.execute_many([query, query, query])
    assert [r.from_cache for r in batch] == [False, True, True]
    stats = scatter.cache_stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 2
    scatter.close()


def test_results_are_detached_from_the_cached_entry(collection):
    scatter = ScatterGatherExecutor(ShardedIndex(collection, 2), cache_size=8)
    query = parse_query("'software'").node
    first = scatter.execute(query)
    expected_ids = list(first.node_ids)
    # A caller mauling its result must not corrupt the cache...
    first.node_ids.clear()
    first.ranked().clear()
    first.scores.clear()
    second = scatter.execute(query)
    assert second.from_cache
    assert second.node_ids == expected_ids
    assert [nid for nid, _ in second.ranked()] == expected_ids
    # ...and neither must mauling a returned cache hit.
    second.node_ids.clear()
    third = scatter.execute(query)
    assert third.node_ids == expected_ids
    scatter.close()


def test_cache_stats_report_zero_capacity_when_disabled(collection):
    scatter = ScatterGatherExecutor(ShardedIndex(collection, 2), cache_size=None)
    assert scatter.cache_stats()["capacity"] == 0
    scatter.close()


def test_custom_scoring_instance_with_extra_ctor_args_fails_loud(collection):
    from repro.exceptions import ScoringError
    from repro.index import InvertedIndex as _II
    from repro.scoring.tfidf import TfIdfScoring

    class Weighted(TfIdfScoring):
        def __init__(self, statistics, weight):
            super().__init__(statistics)
            self.weight = weight

    stats = _II(collection).statistics
    with pytest.raises(ScoringError, match="register it"):
        ScatterGatherExecutor(ShardedIndex(collection, 2), scoring=Weighted(stats, 2.0))


def test_incremental_update_invalidates_cache():
    fresh = Collection.from_texts(
        ["software usability", "task completion", "inverted lists"],
        name="invalidation-test",
    )
    sharded = ShardedIndex(fresh, 2)
    scatter = ScatterGatherExecutor(sharded, cache_size=8)
    query = parse_query("'zebra' AND 'crossing'").node
    assert scatter.execute(query).node_ids == []
    sharded.add_text("a zebra crossing near the software lab")
    refreshed = scatter.execute(query)
    assert not refreshed.from_cache  # the stale empty answer was dropped
    assert refreshed.node_ids == [3]
    assert scatter.cache_stats()["invalidations"] == 1
    scatter.close()


# ------------------------------------------------------------------- facade
def test_facade_reports_shard_and_cache_metadata(collection):
    engine = FullTextEngine.from_collection(collection, shards=3)
    results = engine.search("'software' AND 'usability'")
    assert results.metadata == {"shards": 3, "cache": "miss"}
    again = engine.search("'software' AND 'usability'")
    assert again.metadata == {"shards": 3, "cache": "hit"}
    assert engine.is_sharded and engine.num_shards == 3
    assert len(engine.shard_stats()) == 3
    engine.close()


def test_facade_explicit_cache_at_one_shard_builds_cached_cluster(collection):
    engine = FullTextEngine.from_collection(collection, cache_size=16)
    assert engine.is_sharded and engine.num_shards == 1
    engine.search("'software'")
    assert engine.search("'software'").metadata["cache"] == "hit"
    assert engine.cache_stats()["hits"] == 1
    engine.close()


def test_facade_cache_size_zero_stays_on_the_single_index_path(collection):
    engine = FullTextEngine.from_collection(collection, cache_size=0)
    assert not engine.is_sharded  # 0 disables caching, like the CLI flag
    engine.close()


def test_facade_metadata_reports_cache_off_when_disabled(collection):
    engine = FullTextEngine.from_collection(collection, shards=2, cache_size=None)
    results = engine.search("'software'")
    assert results.metadata == {"shards": 2, "cache": "off"}
    engine.close()


def test_facade_scoring_property_tracks_post_update_statistics():
    fresh = Collection.from_texts(
        ["software usability", "task completion"], name="scoring-prop"
    )
    engine = FullTextEngine.from_collection(fresh, scoring="tfidf", shards=2)
    before = engine.scoring.statistics.node_count
    engine.index.add_text("a new software document")
    engine.search("'software'")  # triggers the stale-model refresh
    assert engine.scoring.statistics.node_count == before + 1
    engine.close()


def test_facade_single_index_has_no_cluster_metadata(collection):
    engine = FullTextEngine.from_collection(collection)
    results = engine.search("'software'")
    assert results.metadata == {}
    assert not engine.is_sharded and engine.num_shards == 1
    assert len(engine.shard_stats()) == 1
    assert engine.cache_stats()["capacity"] == 0
    engine.close()


def test_merged_result_type_round_trip(collection):
    engine = FullTextEngine.from_collection(collection, shards=2)
    outcome = engine.evaluate("'software'")
    assert isinstance(outcome, MergedEvaluationResult)
    assert outcome.shard_count == 2
    engine.close()
