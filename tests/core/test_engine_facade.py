"""Tests for the FullTextEngine facade."""

from __future__ import annotations

import pytest

from repro import Collection, FullTextEngine
from repro.exceptions import QuerySemanticsError, QuerySyntaxError, UnsupportedQueryError
from repro.languages import parse_comp
from repro.languages.classify import LanguageClass
from repro.model.predicates import FunctionPredicate


@pytest.fixture(scope="module")
def engine(figure1_collection) -> FullTextEngine:
    return FullTextEngine.from_collection(figure1_collection, scoring="tfidf")


def test_search_with_query_text(engine):
    results = engine.search("'usability' AND 'software'")
    assert results.node_ids == [0, 1] or set(results.node_ids) == {0, 1}
    assert results.engine == "bool"
    assert results.language_class is LanguageClass.BOOL_NONEG
    assert results.total_matches == 2


def test_search_with_parsed_query_and_ast(engine):
    parsed = engine.parse("dist('task', 'completion', 0)", language="dist")
    from_query = engine.search(parsed)
    from_ast = engine.search(parsed.node)
    assert from_query.node_ids == from_ast.node_ids


def test_search_results_are_ranked_by_score(engine):
    results = engine.search("'usability' OR 'databases'")
    scores = [result.score for result in results]
    assert scores == sorted(scores, reverse=True)
    assert all(result.preview for result in results)


def test_top_k_limits_results_but_keeps_total(engine):
    results = engine.search("'efficient'", top_k=1)
    assert len(results) == 1
    assert results.total_matches == 3


def test_language_restriction_is_enforced(engine):
    with pytest.raises(QuerySyntaxError):
        engine.search("SOME p (p HAS 'usability')", language="bool")
    engine.search("SOME p (p HAS 'usability')", language="comp")


def test_forced_engine_is_used(engine):
    results = engine.search("'usability' AND 'software'", engine="comp")
    assert results.engine == "comp"
    with pytest.raises(UnsupportedQueryError):
        engine.search("EVERY p (p HAS 'usability')", engine="ppred")


def test_unbound_variables_are_rejected(engine):
    with pytest.raises(QuerySemanticsError):
        engine.search("p HAS 'usability'")


def test_explain_reports_class_engine_and_measures(engine):
    explanation = engine.explain(
        "SOME p1 SOME p2 (p1 HAS 'task' AND p2 HAS 'completion' AND ordered(p1, p2))"
    )
    assert explanation["language_class"] == "PPRED"
    assert explanation["engine"] == "ppred"
    assert explanation["measures"]["toks_Q"] == 2
    assert "hasToken" in explanation["calculus"]


def test_from_texts_builder():
    engine = FullTextEngine.from_texts(["alpha beta", "beta gamma"])
    assert engine.search("'beta'").node_ids == [0, 1]
    assert len(engine.collection) == 2


def test_register_custom_predicate_and_query_it():
    engine = FullTextEngine.from_texts(["alpha beta gamma", "gamma beta alpha"])
    engine.register_predicate(
        FunctionPredicate(
            "even_gap", 2, lambda pos, c: (pos[1].offset - pos[0].offset) % 2 == 0
        )
    )
    results = engine.search(
        "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'gamma' AND even_gap(p1, p2))"
    )
    # gap alpha->gamma is 2 in both documents.
    assert results.node_ids == [0, 1]
    # General predicates are evaluated by the COMP engine.
    assert results.engine == "comp"


def test_search_results_container_helpers(engine):
    results = engine.search("'efficient'")
    assert bool(results)
    assert len(list(iter(results))) == len(results)
    assert "match(es)" in results.summary()
    top = results.top(2)
    assert len(top) == 2
    assert top.total_matches == results.total_matches
