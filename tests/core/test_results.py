"""Tests for the SearchResults container."""

from __future__ import annotations

from repro.core.results import SearchResult, SearchResults
from repro.languages.classify import LanguageClass


def make_results() -> SearchResults:
    return SearchResults(
        query_text="'a'",
        results=[
            SearchResult(3, 0.9, "alpha ..."),
            SearchResult(1, 0.5, "beta ..."),
            SearchResult(2, 0.1, "gamma ..."),
        ],
        language_class=LanguageClass.BOOL_NONEG,
        engine="bool",
        elapsed_seconds=0.001,
    )


def test_node_ids_and_scores_follow_rank_order():
    results = make_results()
    assert results.node_ids == [3, 1, 2]
    assert results.scores == {3: 0.9, 1: 0.5, 2: 0.1}


def test_total_matches_defaults_to_result_count():
    assert make_results().total_matches == 3


def test_top_preserves_metadata_and_total():
    results = make_results()
    top = results.top(2)
    assert top.node_ids == [3, 1]
    assert top.total_matches == 3
    assert top.engine == "bool"


def test_container_protocols():
    results = make_results()
    assert len(results) == 3
    assert bool(results)
    assert [r.node_id for r in results] == [3, 1, 2]
    empty = SearchResults("'x'", [], LanguageClass.BOOL, "bool", 0.0)
    assert not empty
    assert empty.total_matches == 0


def test_summary_mentions_engine_and_class():
    summary = make_results().summary()
    assert "BOOL-NONEG" in summary and "bool" in summary
