"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_argument_parser, main


@pytest.fixture
def corpus_dir(tmp_path):
    documents = {
        "usability.txt": "usability of an efficient software supports task completion",
        "testing.txt": "software testing and usability testing",
        "databases.txt": "databases index tokens for retrieval",
    }
    directory = tmp_path / "docs"
    directory.mkdir()
    for name, text in documents.items():
        (directory / name).write_text(text, encoding="utf-8")
    return directory


@pytest.fixture
def index_file(corpus_dir, tmp_path):
    output = tmp_path / "collection.json"
    assert main(["index", str(corpus_dir), "-o", str(output)]) == 0
    return output


def test_index_command_reports_summary(corpus_dir, tmp_path, capsys):
    output = tmp_path / "out.json.gz"
    code = main(["index", str(corpus_dir), "-o", str(output)])
    captured = capsys.readouterr().out
    assert code == 0
    assert output.exists()
    assert "indexed 3 documents" in captured


def test_index_command_accepts_individual_files(corpus_dir, tmp_path):
    files = sorted(str(path) for path in corpus_dir.glob("*.txt"))
    output = tmp_path / "files.json"
    assert main(["index", *files, "-o", str(output)]) == 0


def test_search_command_prints_ranked_results(index_file, capsys):
    code = main(
        ["search", str(index_file), "'usability' AND 'software'", "--top-k", "5"]
    )
    captured = capsys.readouterr().out
    assert code == 0
    assert "match(es)" in captured
    assert "node" in captured


def test_search_command_with_comp_query_and_forced_engine(index_file, capsys):
    code = main(
        [
            "search",
            str(index_file),
            "SOME p1 SOME p2 (p1 HAS 'task' AND p2 HAS 'completion' "
            "AND distance(p1, p2, 0))",
            "--engine",
            "comp",
            "--scoring",
            "none",
        ]
    )
    captured = capsys.readouterr().out
    assert code == 0
    assert "via comp" in captured


def test_search_command_reports_errors_gracefully(index_file, capsys):
    code = main(["search", str(index_file), "'unterminated"])
    captured = capsys.readouterr()
    assert code == 1
    assert "error:" in captured.err


def test_explain_command(capsys):
    code = main(["explain", "dist('task', 'completion', 5)"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "PPRED" in captured
    assert "ppred" in captured
    assert "hasToken" in captured


def test_info_command(index_file, capsys):
    code = main(["info", str(index_file)])
    captured = capsys.readouterr().out
    assert code == 0
    assert "nodes" in captured
    assert "cnodes" in captured
    assert "COMP" in captured


def test_index_stats_command_reports_columnar_footprint(index_file, capsys):
    code = main(["index-stats", str(index_file)])
    captured = capsys.readouterr().out
    assert code == 0
    assert "postings" in captured
    assert "columnar memory footprint" in captured
    assert "total_bytes" in captured
    assert "bytes/position" in captured


def test_search_command_fast_access_mode_matches_paper(index_file, capsys):
    query = "'software' AND 'usability'"
    assert main(["search", str(index_file), query, "--access-mode", "paper"]) == 0
    paper_out = capsys.readouterr().out
    assert main(["search", str(index_file), query, "--access-mode", "fast"]) == 0
    fast_out = capsys.readouterr().out

    def result_lines(output: str) -> list[str]:
        # Ranked result rows only; the summary line carries a timing that
        # differs between runs.
        return [line for line in output.splitlines() if ". node " in line]

    assert result_lines(fast_out) == result_lines(paper_out)
    assert "match(es)" in fast_out


def test_search_command_sharded_matches_single(index_file, capsys):
    query = "'usability' AND 'software'"
    assert main(["search", str(index_file), query]) == 0
    single_out = capsys.readouterr().out
    assert main(["search", str(index_file), query, "--shards", "3"]) == 0
    sharded_out = capsys.readouterr().out

    def result_lines(output: str) -> list[str]:
        return [line for line in output.splitlines() if ". node " in line]

    assert result_lines(sharded_out) == result_lines(single_out)
    assert "scatter-gather over 3 shards" in sharded_out


def test_shard_stats_command(index_file, capsys):
    code = main(
        ["shard-stats", str(index_file), "--shards", "2", "--partitioner", "round-robin"]
    )
    captured = capsys.readouterr().out
    assert code == 0
    assert "partitioner    : round-robin" in captured
    assert "shards         : 2" in captured
    assert "balance" in captured


def test_shard_stats_rejects_unknown_partitioner(index_file, capsys):
    code = main(["shard-stats", str(index_file), "--partitioner", "bogus"])
    captured = capsys.readouterr()
    assert code == 1
    assert "error:" in captured.err


def test_serve_command_batch_session(index_file, capsys, monkeypatch):
    import io

    queries = "\n".join(
        [
            "'usability' AND 'software'",
            "'usability' AND 'software'",  # repeat: served from the cache
            "# a comment line",
            "'unterminated",  # parse error must not kill the server
            ":stats",
            ":quit",
        ]
    )
    monkeypatch.setattr("sys.stdin", io.StringIO(queries + "\n"))
    code = main(["serve", str(index_file), "--shards", "2", "--top-k", "3"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "[cached" in captured
    assert "error:" in captured
    assert "served 2 queries over 2 shard(s)" in captured
    assert "hit_rate=50.0%" in captured


def test_serve_command_single_shard_still_caches(index_file, capsys, monkeypatch):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO("'usability'\n'usability'\n"))
    code = main(["serve", str(index_file), "--scoring", "none"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "served 2 queries over 1 shard(s)" in captured
    assert "[cached" in captured  # the default cache works without sharding


def test_serve_command_cache_disabled(index_file, capsys, monkeypatch):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO("'usability'\n"))
    code = main(["serve", str(index_file), "--cache-size", "0"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "size=0/0" in captured


def test_experiment_command_single_figure_smoke(capsys):
    code = main(["experiment", "--figure", "6", "--scale", "smoke"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "Figure 6" in captured
    assert "BOOL" in captured


def test_experiment_command_figure3(capsys):
    code = main(["experiment", "--figure", "3", "--scale", "smoke"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "complexity hierarchy" in captured
    assert "PPRED" in captured


def test_parser_requires_a_command():
    parser = build_argument_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


# ---------------------------------------------------------------- live index
def test_serve_live_session_mutates_while_serving(index_file, capsys, monkeypatch):
    import io

    session = "\n".join(
        [
            "'usability'",
            ":add a brand new usability document",
            "'usability'",
            ":update 0 nothing relevant anymore",
            ":delete 1",
            "'usability'",
            ":segments",
            ":flush",
            ":compact",
            ":quit",
        ]
    )
    monkeypatch.setattr("sys.stdin", io.StringIO(session + "\n"))
    code = main(["serve", str(index_file), "--live", "--scoring", "none"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "added node 3" in captured
    assert "updated node 0" in captured
    assert "deleted node 1" in captured
    assert "flushed;" in captured
    assert "compacted" in captured
    assert "memtable" in captured or "segment" in captured
    assert "served 3 queries" in captured


def test_serve_without_live_rejects_mutation_commands(index_file, capsys, monkeypatch):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO(":add some text\n:quit\n"))
    code = main(["serve", str(index_file), "--scoring", "none"])
    captured = capsys.readouterr().out
    assert code == 0
    # Without --live the line is treated as a (failing) query, not a command.
    assert "added node" not in captured
    assert "error:" in captured


def test_serve_prints_final_summary_exactly_once_on_eof(index_file, capsys, monkeypatch):
    import io

    # Stream ends without ':quit' -- the EOF path must still summarise once.
    monkeypatch.setattr("sys.stdin", io.StringIO("'usability'\n"))
    code = main(["serve", str(index_file), "--scoring", "none"])
    captured = capsys.readouterr().out
    assert code == 0
    assert captured.count("served 1 queries over") == 1
    assert captured.count("cache: size=") == 1


def test_serve_prints_final_summary_exactly_once_on_interrupt(
    index_file, capsys, monkeypatch
):
    class InterruptingStream:
        def __iter__(self):
            yield "'usability'\n"
            raise KeyboardInterrupt

        def isatty(self):
            return False

    monkeypatch.setattr("sys.stdin", InterruptingStream())
    code = main(["serve", str(index_file), "--scoring", "none"])
    captured = capsys.readouterr().out
    assert code == 0
    assert captured.count("served 1 queries over") == 1


def test_ingest_command_streams_documents(index_file, tmp_path, capsys):
    docs = tmp_path / "stream.txt"
    docs.write_text(
        "usability in streamed form\nsoftware streamed twice\n"
        "another streamed document\n",
        encoding="utf-8",
    )
    queries = tmp_path / "queries.txt"
    queries.write_text("'usability'\n# comment\n", encoding="utf-8")
    code = main(
        [
            "ingest", str(docs),
            "--base", str(index_file),
            "--queries", str(queries),
            "--query-every", "1",
            "--flush-threshold", "2",
            "--compact",
        ]
    )
    captured = capsys.readouterr().out
    assert code == 0
    assert "ingested 3 documents" in captured
    assert "served 3 queries during ingest" in captured
    assert "compacted" in captured


def test_ingest_from_stdin_without_base(tmp_path, capsys, monkeypatch):
    import io

    monkeypatch.setattr("sys.stdin", io.StringIO("only document\n\n"))
    code = main(["ingest", "-"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "ingested 1 documents" in captured


def test_ingest_persists_into_data_dir(index_file, tmp_path, capsys):
    docs = tmp_path / "stream.txt"
    docs.write_text("streamed one\nstreamed two\n", encoding="utf-8")
    data_dir = tmp_path / "livedir"
    code = main(
        ["ingest", str(docs), "--base", str(index_file), "--data-dir", str(data_dir)]
    )
    assert code == 0
    assert (data_dir / "MANIFEST.json").exists()
    capsys.readouterr()
    code = main(["segment-stats", str(data_dir)])
    captured = capsys.readouterr().out
    assert code == 0
    assert "live documents : 5" in captured


def test_segment_stats_on_collection_file(index_file, capsys):
    code = main(["segment-stats", str(index_file), "--flush-threshold", "2"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "live documents : 3" in captured
    assert "segment" in captured
    assert "memory" in captured
