"""Tests for the batch search entry points and the access-mode plumbing."""

from __future__ import annotations

import pytest

from repro.core.engine import FullTextEngine
from repro.engine.executor import Executor
from repro.exceptions import EvaluationError
from repro.index import InvertedIndex


TEXTS = [
    "usability testing of efficient software",
    "software measures how well users achieve task completion",
    "efficient databases make retrieval fast",
    "software usability and software testing",
]

QUERIES = [
    "'software' AND 'usability'",
    "'software' AND 'usability'",  # repeated on purpose: exercises the plan cache
    "dist('task', 'completion', 0)",
    "'efficient' OR 'databases'",
]


@pytest.fixture(scope="module", params=["paper", "fast"])
def engine(request) -> FullTextEngine:
    return FullTextEngine.from_texts(
        TEXTS, scoring="tfidf", access_mode=request.param
    )


def test_search_many_matches_individual_searches(engine):
    batch = engine.search_many(QUERIES)
    singles = [engine.search(query) for query in QUERIES]
    assert [[r.node_id for r in b] for b in batch] == [
        [r.node_id for r in s] for s in singles
    ]
    assert [b.engine for b in batch] == [s.engine for s in singles]
    for b, s in zip(batch, singles):
        for rb, rs in zip(b, s):
            assert rb.score == pytest.approx(rs.score)


def test_search_many_respects_top_k(engine):
    batch = engine.search_many(QUERIES, top_k=1)
    assert all(len(b.results) <= 1 for b in batch)


def test_search_many_reports_per_query_stats(engine):
    batch = engine.search_many(QUERIES)
    with_stats = [b for b in batch if b.cursor_stats is not None]
    assert with_stats, "cursor-backed engines must report stats"
    singles = [engine.search(query) for query in QUERIES]
    for b, s in zip(batch, singles):
        if b.cursor_stats is None:
            assert s.cursor_stats is None
            continue
        # The shared factory must not leak other queries' charges into this
        # query's delta.
        assert b.cursor_stats.as_extended_dict() == s.cursor_stats.as_extended_dict()


def test_execute_many_uses_the_plan_cache(monkeypatch):
    from repro.corpus.collection import Collection

    executor = Executor(InvertedIndex(Collection.from_texts(TEXTS)))
    calls = {"count": 0}
    from repro.engine.plan import extract_plan as real_extract_plan

    def counting_extract_plan(query, registry):
        calls["count"] += 1
        return real_extract_plan(query, registry)

    monkeypatch.setattr(
        "repro.engine.plan.extract_plan", counting_extract_plan
    )
    from repro.core.query import parse_query

    query = parse_query("dist('task', 'completion', 0)", "dist").node
    results = executor.execute_many([query, query, query])
    assert len(results) == 3
    assert calls["count"] == 1  # planned once, replayed from the cache
    assert [r.node_ids for r in results] == [results[0].node_ids] * 3


def test_engine_rejects_unknown_access_mode():
    with pytest.raises(EvaluationError):
        FullTextEngine.from_texts(TEXTS, access_mode="warp")


def test_facade_exposes_access_mode():
    engine = FullTextEngine.from_texts(TEXTS, access_mode="fast")
    assert engine.access_mode == "fast"
    assert engine._executor.access_mode == "fast"
