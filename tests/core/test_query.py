"""Tests for query parsing/classification at the core layer."""

from __future__ import annotations

import pytest

from repro.core.query import Query, parse_query
from repro.exceptions import QuerySemanticsError, QuerySyntaxError
from repro.languages.classify import LanguageClass


def test_parse_query_auto_accepts_all_languages():
    assert parse_query("'a' AND 'b'").language_class is LanguageClass.BOOL_NONEG
    assert parse_query("dist('a', 'b', 2)").language_class is LanguageClass.PPRED
    assert (
        parse_query("EVERY p (p HAS 'a')").language_class is LanguageClass.COMP
    )


def test_parse_query_with_explicit_language_levels():
    assert parse_query("'a' AND NOT 'b'", language="bool").language == "bool"
    assert parse_query("dist('a', 'b', 1)", language="dist").language == "dist"
    with pytest.raises(QuerySyntaxError):
        parse_query("dist('a', 'b', 1)", language="bool")
    with pytest.raises(QuerySyntaxError):
        parse_query("SOME p (p HAS 'a')", language="dist")


def test_parse_query_rejects_unknown_language():
    with pytest.raises(QuerySyntaxError):
        parse_query("'a'", language="sparql")


def test_parse_query_rejects_open_queries():
    with pytest.raises(QuerySemanticsError):
        parse_query("p HAS 'a'")


def test_query_exposes_calculus_measures_and_tokens():
    query = parse_query(
        "SOME p1 SOME p2 (p1 HAS 'alpha' AND p2 HAS 'beta' AND distance(p1, p2, 4))"
    )
    assert isinstance(query, Query)
    assert query.tokens() == {"alpha", "beta"}
    assert query.measures() == {"toks_Q": 2, "preds_Q": 1, "ops_Q": 4}
    assert "hasToken(p1, 'alpha')" in query.to_calculus().to_text()
