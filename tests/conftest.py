"""Shared fixtures: small hand-built collections and indexes.

The fixtures mirror the paper's running examples:

* ``figure1_collection`` -- a miniature of the Figure 1 book document plus a
  few companions, with paragraph/sentence structure, used by position and
  predicate tests;
* ``witness_collections`` -- the documents from the incompleteness proofs
  (Theorems 3 and 5);
* ``small_synthetic`` -- a deterministic synthetic collection large enough to
  exercise the engines but small enough for the oracle evaluator.
"""

from __future__ import annotations

import pytest

from repro.corpus import Collection, ContextNode, node_from_paragraphs
from repro.corpus.synthetic import SyntheticSpec, generate_collection
from repro.index import InvertedIndex


@pytest.fixture(scope="session")
def figure1_collection() -> Collection:
    """Four documents with controlled paragraph/sentence structure."""
    book = node_from_paragraphs(
        0,
        [
            # paragraph 0 (two sentences of 6 tokens each)
            [
                "usability", "definition", "usability", "of", "a", "software",
                "measures", "how", "well", "the", "software", "supports",
            ],
            # paragraph 1
            [
                "achieving", "an", "efficient", "software", "task", "completion",
            ],
            # paragraph 2
            ["more", "on", "usability", "of", "a", "software"],
        ],
        sentence_length=6,
        metadata={"title": "usability-book"},
    )
    testing = node_from_paragraphs(
        1,
        [
            ["software", "testing", "and", "usability", "testing", "differ"],
            ["efficient", "testing", "of", "task", "completion", "matters"],
        ],
        sentence_length=6,
        metadata={"title": "testing-article"},
    )
    databases = node_from_paragraphs(
        2,
        [
            ["databases", "support", "full", "text", "search"],
            ["inverted", "lists", "make", "retrieval", "efficient"],
        ],
        sentence_length=5,
        metadata={"title": "databases-article"},
    )
    unrelated = node_from_paragraphs(
        3,
        [["networks", "route", "packets", "between", "hosts"]],
        sentence_length=5,
        metadata={"title": "networks-note"},
    )
    return Collection.from_nodes([book, testing, databases, unrelated], "figure1")


@pytest.fixture(scope="session")
def figure1_index(figure1_collection: Collection) -> InvertedIndex:
    return InvertedIndex(figure1_collection)


@pytest.fixture(scope="session")
def theorem3_collection() -> Collection:
    """CN1 = {t1}; CN2 = {t1, t2}: the Theorem 3 witness documents."""
    return Collection.from_nodes(
        [
            ContextNode.from_tokens(1, ["t1"]),
            ContextNode.from_tokens(2, ["t1", "t2"]),
        ],
        "theorem3",
    )


@pytest.fixture(scope="session")
def theorem5_collection() -> Collection:
    """CN1 = t1 t2 t1; CN2 = t1 t2 t1 t2: the Theorem 5 witness documents."""
    return Collection.from_nodes(
        [
            ContextNode.from_tokens(1, ["t1", "t2", "t1"]),
            ContextNode.from_tokens(2, ["t1", "t2", "t1", "t2"]),
        ],
        "theorem5",
    )


@pytest.fixture(scope="session")
def small_synthetic() -> Collection:
    """A deterministic 40-node synthetic collection with planted query tokens."""
    spec = SyntheticSpec(
        num_nodes=40,
        tokens_per_node=60,
        vocabulary_size=150,
        query_tokens=("alpha", "beta", "gamma"),
        query_token_document_frequency=0.6,
        query_token_positions_per_entry=3,
        sentence_length=8,
        paragraph_length=20,
        seed=7,
    )
    return generate_collection(spec, name="small-synthetic")


@pytest.fixture(scope="session")
def small_synthetic_index(small_synthetic: Collection) -> InvertedIndex:
    return InvertedIndex(small_synthetic)
