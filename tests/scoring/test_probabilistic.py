"""Tests for probabilistic (PRA) scoring."""

from __future__ import annotations

import pytest

from repro.corpus import Collection
from repro.engine.naive_engine import NaiveCompEngine
from repro.index import InvertedIndex
from repro.languages.parser import LanguageLevel, QueryParser
from repro.model.positions import Position
from repro.model.predicates import DistancePredicate, OrderedPredicate
from repro.scoring import ProbabilisticScoring

_PARSER = QueryParser(LanguageLevel.COMP)


@pytest.fixture(scope="module")
def index() -> InvertedIndex:
    return InvertedIndex(
        Collection.from_texts(
            [
                "usability usability of software",
                "software engineering practices",
                "databases and query languages",
            ]
        )
    )


@pytest.fixture
def model(index) -> ProbabilisticScoring:
    model = ProbabilisticScoring(index.statistics)
    model.prepare(["usability", "software"])
    return model


def test_token_probability_is_a_probability(model):
    for token in ("usability", "software", "databases", "missing"):
        assert 0.0 <= model.token_probability(token) <= 1.0


def test_rarer_tokens_have_higher_probability(model):
    # 'databases' occurs in 1 node, 'software' in 2.
    assert model.token_probability("databases") > model.token_probability("software")


def test_document_score_bounds_and_monotonicity(model):
    scores = [model.document_score(nid) for nid in (0, 1, 2)]
    assert all(0.0 <= score <= 1.0 for score in scores)
    # Node 0 matches both query tokens, node 1 only one, node 2 none.
    assert scores[0] > scores[1] > scores[2] == 0.0


def test_projection_combines_disjunctively(model):
    assert model.combine_projection([0.5, 0.5]) == pytest.approx(0.75)
    assert model.combine_projection([]) == 0.0
    assert model.combine_projection([1.0, 0.3]) == pytest.approx(1.0)


def test_join_and_intersection_multiply(model):
    assert model.combine_join(0.5, 0.4, 1, 1) == pytest.approx(0.2)
    assert model.combine_intersection(0.5, 0.4) == pytest.approx(0.2)


def test_union_is_probabilistic_or(model):
    assert model.combine_union(0.5, 0.5) == pytest.approx(0.75)
    assert model.combine_union(0.0, 0.3) == pytest.approx(0.3)


def test_selection_factor_for_distance_decays_with_gap(model):
    predicate = DistancePredicate()
    close = model.transform_selection(1.0, predicate, [Position(3), Position(4)], (5,))
    far = model.transform_selection(1.0, predicate, [Position(3), Position(8)], (5,))
    assert close > far
    assert 0.0 <= far <= close <= 1.0


def test_selection_factor_defaults_to_identity_for_other_predicates(model):
    predicate = OrderedPredicate()
    assert model.transform_selection(0.8, predicate, [Position(1), Position(2)], ()) == (
        pytest.approx(0.8)
    )


def test_scores_stay_in_unit_interval_through_the_algebra(index):
    scoring = ProbabilisticScoring(index.statistics)
    engine = NaiveCompEngine(index, scoring=scoring)
    for text in [
        "'usability' AND 'software'",
        "'usability' OR 'databases'",
        "SOME p1 SOME p2 (p1 HAS 'usability' AND p2 HAS 'software' "
        "AND distance(p1, p2, 3))",
    ]:
        evaluation = engine.evaluate_full(_PARSER.parse_closed(text))
        for score in evaluation.scores.values():
            assert 0.0 <= score <= 1.0
