"""Tests for the scoring framework plumbing (registry, facade integration)."""

from __future__ import annotations

import pytest

from repro.corpus import Collection
from repro.core import FullTextEngine
from repro.exceptions import ScoringError
from repro.index import InvertedIndex
from repro.scoring import (
    ProbabilisticScoring,
    ScoringModel,
    TfIdfScoring,
    available_models,
    get_model,
    register_model,
)


@pytest.fixture(scope="module")
def index() -> InvertedIndex:
    return InvertedIndex(
        Collection.from_texts(["usability of software", "software testing"])
    )


def test_builtin_models_are_registered(index):
    names = available_models()
    assert "tfidf" in names and "probabilistic" in names
    assert isinstance(get_model("tfidf", index.statistics), TfIdfScoring)
    assert isinstance(get_model("TF-IDF", index.statistics), TfIdfScoring)
    assert isinstance(get_model("pra", index.statistics), ProbabilisticScoring)


def test_unknown_model_raises(index):
    with pytest.raises(ScoringError):
        get_model("bm25-but-not-really", index.statistics)


def test_custom_model_can_be_registered(index):
    class ConstantScoring(ScoringModel):
        name = "constant"

        def base_score(self, node_id, position, token):
            return 0.5

        def document_score(self, node_id):
            return 0.5

    register_model("constant-test", ConstantScoring)
    model = get_model("constant-test", index.statistics)
    assert model.document_score(0) == 0.5


def test_rank_defaults_to_descending_scores(index):
    model = TfIdfScoring(index.statistics)
    model.prepare(["software"])
    ranked = model.rank([0, 1])
    assert len(ranked) == 2
    assert ranked[0][1] >= ranked[1][1]


def test_facade_accepts_model_names_instances_and_none():
    collection = Collection.from_texts(["usability of software", "software"])
    by_name = FullTextEngine.from_collection(collection, scoring="tfidf")
    results = by_name.search("'software'")
    assert all(result.score >= 0 for result in results)

    index = InvertedIndex(collection)
    by_instance = FullTextEngine(index, scoring=ProbabilisticScoring(index.statistics))
    assert by_instance.search("'software'").node_ids

    unscored = FullTextEngine.from_collection(collection)
    assert all(result.score == 0.0 for result in unscored.search("'software'"))


def test_facade_rejects_bad_scoring_argument():
    collection = Collection.from_texts(["alpha"])
    with pytest.raises(ScoringError):
        FullTextEngine.from_collection(collection, scoring=42)  # type: ignore[arg-type]
