"""Scores must be bit-identical across processes (hash-seed independence).

Float addition is not associative, and ``ContextNode.unique_tokens()`` is a
set whose iteration order follows the per-process string hash seed -- so a
norm summed in set order drifts by an ulp or two between processes.  That
drift broke the replay harness's bit-identical verification of served HTTP
results against a local reference engine.  The norms now sum in sorted
token order; this test pins the contract by scoring the same corpus under
two different ``PYTHONHASHSEED`` values and requiring identical rankings
down to the last bit of every score.
"""

from __future__ import annotations

import os
import subprocess
import sys

_SCRIPT = """
import json
from repro.corpus.synthetic import generate_inex_like_collection
from repro.core.engine import FullTextEngine

collection = generate_inex_like_collection(
    num_nodes=80, tokens_per_node=40, pos_per_entry=2
)
engine = FullTextEngine.from_collection(
    collection, scoring="tfidf", access_mode="fast"
)
rankings = {}
for query in ("'w00000'", "'w00001' AND 'w00002'"):
    results = engine.search(query, top_k=10)
    rankings[query] = [(r.node_id, r.score.hex()) for r in results]
engine.close()
print(json.dumps(rankings, sort_keys=True))
"""


def _rank_under_seed(seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=seed)
    env["PYTHONPATH"] = os.pathsep.join(
        path for path in (env.get("PYTHONPATH"), *sys.path) if path
    )
    return subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        env=env, capture_output=True, text=True, check=True, timeout=120,
    ).stdout


def test_tfidf_scores_do_not_depend_on_the_hash_seed():
    assert _rank_under_seed("1") == _rank_under_seed("2")
