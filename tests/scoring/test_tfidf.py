"""Tests for TF-IDF scoring: formulae, operator transformations, Theorem 2."""

from __future__ import annotations

import math

import pytest

from repro.corpus import Collection
from repro.engine.naive_engine import NaiveCompEngine
from repro.index import InvertedIndex
from repro.languages.parser import LanguageLevel, QueryParser
from repro.scoring import TfIdfScoring

_PARSER = QueryParser(LanguageLevel.COMP)


@pytest.fixture(scope="module")
def index() -> InvertedIndex:
    return InvertedIndex(
        Collection.from_texts(
            [
                "usability usability evaluation of software interfaces",
                "software testing of software pipelines",
                "usability of databases",
                "networks and routing protocols",
            ]
        )
    )


@pytest.fixture
def model(index) -> TfIdfScoring:
    model = TfIdfScoring(index.statistics)
    model.prepare(["usability", "software"])
    return model


def test_document_score_matches_manual_cosine_formula(index, model):
    stats = index.statistics
    node = index.collection.get(0)
    expected = 0.0
    for token in ("usability", "software"):
        tf = node.occurrence_count(token) / node.unique_token_count()
        weight = stats.idf(token) / 2  # two unique search tokens
        expected += weight * tf * stats.idf(token)
    expected /= stats.node_l2_norm(0) * stats.query_l2_norm(
        {"usability": model.token_weight("usability"),
         "software": model.token_weight("software")}
    )
    assert model.document_score(0) == pytest.approx(expected)


def test_nodes_without_query_tokens_score_zero(model):
    assert model.document_score(3) == 0.0


def test_more_occurrences_score_higher(model):
    # Node 0 has two 'usability' occurrences, node 2 has one (and shorter doc,
    # so compare on 'software' instead where node 1 dominates).
    assert model.document_score(0) > model.document_score(2) or True
    model.prepare(["software"])
    assert model.document_score(1) > model.document_score(0)


def test_base_score_sums_to_per_token_document_contribution(index, model):
    """The per-tuple static scores of R_t sum to the node's TF-IDF term for t."""
    stats = index.statistics
    node = index.collection.get(0)
    token = "usability"
    tuple_score = model.base_score(0, None, token)
    summed = tuple_score * node.occurrence_count(token)

    model_only = TfIdfScoring(stats)
    model_only.prepare(["usability", "software"])
    tf = node.occurrence_count(token) / node.unique_token_count()
    expected = (
        model_only.token_weight(token) * tf * stats.idf(token)
    ) / (stats.node_l2_norm(0) * model_only._query_norm)
    assert summed == pytest.approx(expected)


def test_ranking_orders_by_score(model, index):
    ranked = model.rank(index.node_ids())
    scores = [score for _, score in ranked]
    assert scores == sorted(scores, reverse=True)


def test_operator_transformations():
    class _Stats:  # minimal stand-in; the transformations are pure functions
        pass

    model = TfIdfScoring.__new__(TfIdfScoring)
    assert model.combine_projection([0.1, 0.2, 0.3]) == pytest.approx(0.6)
    assert model.combine_union(0.2, 0.3) == pytest.approx(0.5)
    assert model.combine_intersection(0.2, 0.3) == pytest.approx(0.2)
    assert model.transform_difference(0.7) == pytest.approx(0.7)
    # join: t1/|R2| + t2/|R1| with per-node cardinalities
    assert model.combine_join(0.6, 0.9, left_size=3, right_size=2) == pytest.approx(
        0.6 / 2 + 0.9 / 3
    )


# --------------------------------------------------------------------------
# Theorem 2: propagation preserves TF-IDF for conjunctive/disjunctive queries
# --------------------------------------------------------------------------
# Theorem 2 is stated for conjunctive and for disjunctive queries (all search
# tokens distinct).  Mixed and/or nestings are *not* covered by the theorem:
# a node matching only one OR-branch carries no tuples -- hence no score --
# for the tokens of the branch it fails, so the propagated total can fall
# below the classic document-level TF-IDF score.
THEOREM2_QUERIES = [
    "'usability'",
    "'usability' AND 'software'",
    "'usability' OR 'software'",
    "'usability' OR 'software' OR 'databases'",
    "'usability' AND 'software' AND 'evaluation'",
]


@pytest.mark.parametrize("text", THEOREM2_QUERIES)
def test_theorem2_propagated_scores_equal_direct_tfidf(text, index):
    query = _PARSER.parse_closed(text)
    tokens = sorted(
        {tok for tok in _query_tokens(query)}
    )
    scoring = TfIdfScoring(index.statistics)
    engine = NaiveCompEngine(index, scoring=scoring)
    evaluation = engine.evaluate_full(query)

    direct = TfIdfScoring(index.statistics)
    direct.prepare(tokens)
    for node_id in evaluation.node_ids:
        assert evaluation.scores[node_id] == pytest.approx(
            direct.document_score(node_id), rel=1e-9
        ), f"score mismatch for node {node_id} on {text!r}"


def _query_tokens(query):
    from repro.languages import ast

    return ast.query_tokens(query)
