"""Shared helpers for the server tests: engine factory + socket harness."""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

from repro.core.engine import FullTextEngine
from repro.server import QueryServer, ServerConfig


def make_engine(collection, **kwargs):
    defaults = dict(scoring="tfidf", access_mode="fast")
    defaults.update(kwargs)
    return FullTextEngine.from_collection(collection, **defaults)


class RunningServer:
    """A :class:`QueryServer` on a real socket, driven from test threads.

    The event loop runs in a daemon thread; tests talk plain
    ``http.client`` over localhost, exactly like an external client.
    """

    def __init__(self, engine, config: ServerConfig | None = None) -> None:
        config = config or ServerConfig()
        config.port = 0  # always pick a free port in tests
        self.server = QueryServer(engine, config)
        self.loop: asyncio.AbstractEventLoop | None = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            await self.server.start()
            self.loop = asyncio.get_running_loop()
            self._started.set()
            await self.server.serve_until_signalled()

        asyncio.run(main())

    # ----------------------------------------------------------- lifecycle
    def __enter__(self) -> "RunningServer":
        self._thread.start()
        assert self._started.wait(10), "server failed to start"
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        if self._thread.is_alive() and self.loop is not None:
            future = asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), self.loop
            )
            future.result(timeout=30)
        self._thread.join(timeout=30)
        assert not self._thread.is_alive(), "server thread failed to exit"

    @property
    def port(self) -> int:
        return self.server.port

    # -------------------------------------------------------------- clients
    def connect(self, timeout: float = 10.0) -> http.client.HTTPConnection:
        return http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)

    def request(
        self,
        method: str,
        target: str,
        body: dict | None = None,
        connection: http.client.HTTPConnection | None = None,
    ) -> tuple[int, dict]:
        """One request; returns ``(status, parsed JSON body)``."""
        conn = connection or self.connect()
        payload = json.dumps(body) if body is not None else None
        conn.request(
            method,
            target,
            body=payload,
            headers={"Content-Type": "application/json"} if payload else {},
        )
        response = conn.getresponse()
        data = json.loads(response.read())
        if connection is None:
            conn.close()
        return response.status, data
