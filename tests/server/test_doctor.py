"""Tests for ``repro doctor``: environment and index-target validation."""

from __future__ import annotations

import json

from repro.cli import main
from repro.index.storage import save_collection
from repro.segments.live_index import MANIFEST_NAME, SEGMENT_DIR, WAL_NAME
from repro.server.doctor import render_report, run_doctor


def statuses(results):
    return {result.name: result.status for result in results}


def test_environment_checks_pass_here():
    results = run_doctor()
    assert not any(result.failed for result in results)
    by_name = statuses(results)
    assert by_name["python"] == "ok"
    assert by_name["asyncio"] == "ok"
    assert by_name["mmap"] == "ok"
    assert by_name["tempdir"] == "ok"


def test_port_check_binds_ephemeral_port():
    results = run_doctor(host="127.0.0.1", port=0)
    assert statuses(results)["port"] == "ok"


def test_index_file_check_reports_collection_summary(
    server_collection, tmp_path
):
    saved = tmp_path / "collection.json"
    save_collection(server_collection, saved)
    results = run_doctor(index_path=saved)
    index_checks = [result for result in results if result.name == "index"]
    assert len(index_checks) == 1
    assert index_checks[0].status == "ok"
    assert "nodes" in index_checks[0].detail


def test_missing_index_path_fails(tmp_path):
    results = run_doctor(index_path=tmp_path / "nope.json")
    assert any(result.failed and result.name == "index" for result in results)


def test_corrupt_index_file_fails(tmp_path):
    bad = tmp_path / "corrupt.json"
    bad.write_text("{not json", encoding="utf-8")
    results = run_doctor(index_path=bad)
    assert any(result.failed and result.name == "index" for result in results)


def test_live_dir_check_validates_manifest_segments_and_wal(tmp_path):
    data = tmp_path / "live"
    (data / SEGMENT_DIR).mkdir(parents=True)
    (data / SEGMENT_DIR / "seg-000.bin").write_bytes(b"\x00")
    (data / MANIFEST_NAME).write_text(
        json.dumps({"segments": [{"file": "seg-000.bin"}], "applied_seq": 3}),
        encoding="utf-8",
    )
    (data / WAL_NAME).write_text('{"op": "add"}\n{"op": "delete"}\n')
    results = run_doctor(index_path=data)
    by_name = statuses(results)
    assert by_name["manifest"] == "ok"
    assert by_name["segments"] == "ok"
    assert by_name["wal"] == "ok"
    wal = next(result for result in results if result.name == "wal")
    assert "2 record(s)" in wal.detail


def test_live_dir_missing_segment_file_fails(tmp_path):
    data = tmp_path / "live"
    (data / SEGMENT_DIR).mkdir(parents=True)
    (data / MANIFEST_NAME).write_text(
        json.dumps({"segments": [{"file": "gone.bin"}], "applied_seq": 1}),
        encoding="utf-8",
    )
    results = run_doctor(index_path=data)
    by_name = statuses(results)
    assert by_name["segments"] == "fail"
    assert by_name["wal"] == "warn"  # missing WAL is workable, not fatal


def test_non_live_directory_fails_manifest_check(tmp_path):
    results = run_doctor(index_path=tmp_path)
    assert any(
        result.failed and result.name == "manifest" for result in results
    )


def test_render_report_verdict():
    passing = run_doctor()
    report = render_report(passing)
    assert "ready to serve" in report
    failing = run_doctor(index_path="/nonexistent/path.json")
    assert "NOT ready to serve" in render_report(failing)


def test_doctor_cli_exit_codes(server_collection, tmp_path, capsys):
    saved = tmp_path / "collection.json"
    save_collection(server_collection, saved)
    assert main(["doctor", str(saved)]) == 0
    assert "ready to serve" in capsys.readouterr().out
    assert main(["doctor", str(tmp_path / "missing.json")]) == 1
    assert "NOT ready to serve" in capsys.readouterr().out


def test_optimizer_check_reports_planner_health():
    results = run_doctor()
    by_check = {result.name: result for result in results}
    optimizer = by_check["optimizer"]
    assert optimizer.status == "ok"
    assert "cost-based planner operational" in optimizer.detail
    assert "off" in optimizer.detail and "static" in optimizer.detail
