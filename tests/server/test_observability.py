"""End-to-end observability: /metrics, request ids, explain, slow-query log."""

from __future__ import annotations

import io
import json

from repro.server import ServerConfig

from harness import RunningServer, make_engine

QUERY = "'usability' AND 'software'"


def raw_get(server: RunningServer, target: str, headers: dict | None = None):
    """GET returning (status, headers, body-bytes) without JSON parsing."""
    conn = server.connect()
    try:
        conn.request("GET", target, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


# ----------------------------------------------------------------- /metrics
def test_metrics_endpoint_serves_prometheus_text(server_collection):
    engine = make_engine(server_collection, shards=2, cache_size=16)
    with RunningServer(engine) as server:
        server.request("POST", "/search", body={"q": QUERY, "top_k": 3})
        server.request("POST", "/search", body={"q": QUERY, "top_k": 3})
        status, headers, body = raw_get(server, "/metrics")
    assert status == 200
    assert headers["Content-Type"] == "text/plain; version=0.0.4; charset=utf-8"
    text = body.decode("utf-8")
    for family in (
        "repro_queries_total",
        "repro_query_seconds",
        "repro_cursor_ops_total",
        "repro_cache_lookups_total",
        "repro_wal_appends_total",
        "repro_compactions_total",
        "repro_scatter_tasks_total",
        "repro_http_requests_total",
    ):
        assert f"# TYPE {family}" in text, f"{family} missing from /metrics"
    assert 'repro_http_requests_total{path="/search",status="200"}' in text


def test_metrics_post_is_method_not_allowed(server_collection):
    engine = make_engine(server_collection)
    with RunningServer(engine) as server:
        status, payload = server.request("POST", "/metrics", body={})
    assert status == 405


# --------------------------------------------------------------- request id
def test_client_request_id_is_echoed_everywhere(server_collection):
    engine = make_engine(server_collection)
    access_log = io.StringIO()
    config = ServerConfig(access_log=access_log)
    with RunningServer(engine, config) as server:
        conn = server.connect()
        try:
            conn.request(
                "POST",
                "/search",
                body=json.dumps({"q": QUERY, "top_k": 2}),
                headers={
                    "Content-Type": "application/json",
                    "X-Request-Id": "req-abc-123",
                },
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 200
            assert response.getheader("X-Request-Id") == "req-abc-123"
            assert payload["request_id"] == "req-abc-123"
        finally:
            conn.close()
    logged = [json.loads(line) for line in access_log.getvalue().splitlines()]
    assert any(entry["request_id"] == "req-abc-123" for entry in logged)


def test_request_id_is_generated_when_absent(server_collection):
    engine = make_engine(server_collection)
    with RunningServer(engine) as server:
        status, headers, body = raw_get(server, "/health")
    assert status == 200
    generated = headers.get("X-Request-Id")
    assert generated and len(generated) == 16
    assert all(ch in "0123456789abcdef" for ch in generated)


def test_error_responses_carry_the_request_id(server_collection):
    engine = make_engine(server_collection)
    with RunningServer(engine) as server:
        conn = server.connect()
        try:
            conn.request(
                "POST",
                "/search",
                body=json.dumps({"q": "'unterminated"}),
                headers={
                    "Content-Type": "application/json",
                    "X-Request-Id": "req-err-1",
                },
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert payload["error"]["code"] == "query_error"
            assert payload["error"]["request_id"] == "req-err-1"
            assert response.getheader("X-Request-Id") == "req-err-1"
        finally:
            conn.close()


def test_stats_renders_null_percentiles_before_traffic(server_collection):
    engine = make_engine(server_collection)
    with RunningServer(engine) as server:
        status, headers, body = raw_get(server, "/stats")
    assert status == 200
    latency = json.loads(body)["server"]["latency"]["/search"]
    assert latency["count"] == 0
    assert latency["p50_ms"] is None
    assert latency["p95_ms"] is None


# ------------------------------------------------------------------ explain
def test_http_explain_attaches_payload_and_trace(server_collection):
    engine = make_engine(server_collection, shards=2, cache_size=16)
    with RunningServer(engine) as server:
        _, plain = server.request(
            "POST", "/search", body={"q": QUERY, "top_k": 4}
        )
        status, explained = server.request(
            "POST", "/search", body={"q": QUERY, "top_k": 4, "explain": True}
        )
    assert status == 200
    assert explained["results"] == plain["results"]  # bit-identical
    assert explained["cache"] == "bypass"
    payload = explained["explain"]
    assert payload["operator"] == "scatter"
    assert payload["shard_count"] == 2
    assert payload["cursor_totals"]["next_entry_calls"] > 0
    trace = explained["trace"]
    assert trace["trace_id"] == explained["request_id"]
    names = {child["name"] for child in trace.get("children", [])}
    assert names  # dispatcher/engine spans were attached


def test_http_explain_via_query_string(server_collection):
    engine = make_engine(server_collection)
    with RunningServer(engine) as server:
        status, payload = server.request(
            "GET", "/search?q=%27usability%27&top_k=2&explain=true"
        )
        assert status == 200
        assert payload["explain"]["operator"] == "execute"
        status, payload = server.request(
            "GET", "/search?q=%27usability%27&top_k=2&explain=nonsense"
        )
        assert status == 400


# ------------------------------------------------------------ slow-query log
def test_slow_query_log_dumps_traces_over_threshold(server_collection):
    engine = make_engine(server_collection, shards=2, cache_size=0)
    slow_log = io.StringIO()
    config = ServerConfig(slow_query_ms=0.0001, slow_query_log=slow_log)
    with RunningServer(engine, config) as server:
        status, payload = server.request(
            "POST", "/search", body={"q": QUERY, "top_k": 3}
        )
        assert status == 200
    entries = [json.loads(line) for line in slow_log.getvalue().splitlines()]
    assert entries, "every query should breach a 0.0001 ms threshold"
    entry = entries[0]
    assert entry["query"] == QUERY
    assert entry["status"] == 200
    assert entry["threshold_ms"] == 0.0001
    assert entry["trace_id"] == payload["request_id"]
    assert entry["trace"]["name"] == "request"


def test_fast_queries_stay_out_of_the_slow_log(server_collection):
    engine = make_engine(server_collection)
    slow_log = io.StringIO()
    config = ServerConfig(slow_query_ms=60_000.0, slow_query_log=slow_log)
    with RunningServer(engine, config) as server:
        status, _ = server.request(
            "POST", "/search", body={"q": QUERY, "top_k": 3}
        )
        assert status == 200
    assert slow_log.getvalue() == ""


def test_slow_query_log_records_plan_provenance(server_collection):
    engine = make_engine(server_collection, optimizer="on")
    slow_log = io.StringIO()
    config = ServerConfig(slow_query_ms=0.0001, slow_query_log=slow_log)
    with RunningServer(engine, config) as server:
        status, _ = server.request(
            "POST", "/search", body={"q": QUERY, "top_k": 3}
        )
        assert status == 200
    entries = [json.loads(line) for line in slow_log.getvalue().splitlines()]
    assert entries
    plan = entries[0]["plan"]
    assert plan["optimizer"] == "on"
    assert plan["provenance"] in ("optimized", "cached")
    assert plan["merge_strategy"]  # a slow query's choices are in the log


def test_stats_reports_optimizer_mode_and_planner_counters(server_collection):
    engine = make_engine(server_collection, optimizer="on")
    with RunningServer(engine) as server:
        server.request("POST", "/search", body={"q": QUERY, "top_k": 3})
        server.request("POST", "/search", body={"q": QUERY, "top_k": 3})
        status, stats = server.request("GET", "/stats")
    assert status == 200
    optimizer = stats["engine"]["optimizer"]
    assert optimizer["mode"] == "on"
    assert optimizer["plans_built"] >= 1
    assert "generation" in optimizer


def test_metrics_count_plans_by_provenance(server_collection):
    engine = make_engine(server_collection, optimizer="on")
    with RunningServer(engine) as server:
        server.request("POST", "/search", body={"q": QUERY, "top_k": 3})
        server.request("POST", "/search", body={"q": QUERY, "top_k": 3})
        _, _, body = raw_get(server, "/metrics")
    text = body.decode("utf-8")
    assert "repro_plans_total" in text
    assert 'repro_plans_total{source="optimized"}' in text
