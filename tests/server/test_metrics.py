"""Tests for the shared latency recorder and percentile helper."""

from __future__ import annotations

import threading

import pytest

from repro.telemetry.latency import (
    LatencyRecorder,
    format_latency_summary,
    percentile,
)


def test_percentile_is_nearest_rank():
    values = sorted(float(value) for value in range(1, 101))
    assert percentile(values, 0.50) == 51.0  # int(0.5 * 100) = index 50
    assert percentile(values, 0.95) == 96.0
    assert percentile(values, 0.99) == 100.0
    assert percentile(values, 0.0) == 1.0


def test_percentile_empty_is_none():
    # Regression: an empty window used to report 0.0, which read as "we
    # answered in zero milliseconds"; before the first request there is no
    # latency to report, so the percentile is None (JSON null in /stats).
    assert percentile([], 0.5) is None
    assert percentile((), 0.99) is None


def test_recorder_percentiles_are_none_before_first_request():
    recorder = LatencyRecorder()
    assert recorder.percentile_ms(0.5) is None
    snapshot = recorder.snapshot()
    assert snapshot["count"] == 0
    assert snapshot["mean_ms"] == 0.0
    assert snapshot["p50_ms"] is None
    assert snapshot["p95_ms"] is None
    assert snapshot["p99_ms"] is None


def test_recorder_snapshot_counts_and_percentiles():
    recorder = LatencyRecorder()
    for value in [1.0, 2.0, 3.0, 4.0, 100.0]:
        recorder.record(value)
    snapshot = recorder.snapshot()
    assert snapshot["count"] == 5
    assert snapshot["mean_ms"] == 22.0
    assert snapshot["p50_ms"] == 3.0
    assert snapshot["p99_ms"] == 100.0


def test_recorder_window_bounds_percentiles_but_not_count():
    recorder = LatencyRecorder(window=10)
    for value in range(100):
        recorder.record(float(value))
    snapshot = recorder.snapshot()
    assert snapshot["count"] == 100  # lifetime count
    assert snapshot["p50_ms"] >= 90.0  # window holds only the last 10


def test_recorder_is_thread_safe():
    recorder = LatencyRecorder()

    def hammer():
        for _ in range(1000):
            recorder.record(1.0)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert recorder.count == 4000
    assert recorder.mean_ms() == 1.0


def test_format_latency_summary_matches_repl_style():
    recorder = LatencyRecorder()
    recorder.record(2.0)
    line = format_latency_summary(recorder.snapshot())
    assert line == "mean=2.00 ms p50=2.00 ms p95=2.00 ms"


def test_format_latency_summary_renders_na_before_first_request():
    line = format_latency_summary(LatencyRecorder().snapshot())
    assert line == "mean=0.00 ms p50=n/a p95=n/a"


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
def test_deprecated_server_metrics_shim_reexports_telemetry():
    # repro.server.metrics must keep working for old imports, backed by the
    # exact same objects as repro.telemetry.latency.
    from repro.server import metrics as shim

    assert shim.percentile is percentile
    assert shim.LatencyRecorder is LatencyRecorder
    assert shim.format_latency_summary is format_latency_summary
