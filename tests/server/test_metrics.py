"""Tests for the shared latency recorder and percentile helper."""

from __future__ import annotations

import threading

from repro.server.metrics import LatencyRecorder, format_latency_summary, percentile


def test_percentile_is_nearest_rank():
    values = sorted(float(value) for value in range(1, 101))
    assert percentile(values, 0.50) == 51.0  # int(0.5 * 100) = index 50
    assert percentile(values, 0.95) == 96.0
    assert percentile(values, 0.99) == 100.0
    assert percentile(values, 0.0) == 1.0


def test_percentile_empty_is_zero():
    assert percentile([], 0.5) == 0.0


def test_recorder_snapshot_counts_and_percentiles():
    recorder = LatencyRecorder()
    for value in [1.0, 2.0, 3.0, 4.0, 100.0]:
        recorder.record(value)
    snapshot = recorder.snapshot()
    assert snapshot["count"] == 5
    assert snapshot["mean_ms"] == 22.0
    assert snapshot["p50_ms"] == 3.0
    assert snapshot["p99_ms"] == 100.0


def test_recorder_window_bounds_percentiles_but_not_count():
    recorder = LatencyRecorder(window=10)
    for value in range(100):
        recorder.record(float(value))
    snapshot = recorder.snapshot()
    assert snapshot["count"] == 100  # lifetime count
    assert snapshot["p50_ms"] >= 90.0  # window holds only the last 10


def test_recorder_is_thread_safe():
    recorder = LatencyRecorder()

    def hammer():
        for _ in range(1000):
            recorder.record(1.0)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert recorder.count == 4000
    assert recorder.mean_ms() == 1.0


def test_format_latency_summary_matches_repl_style():
    recorder = LatencyRecorder()
    recorder.record(2.0)
    line = format_latency_summary(recorder.snapshot())
    assert line == "mean=2.00 ms p50=2.00 ms p95=2.00 ms"
