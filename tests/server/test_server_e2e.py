"""End-to-end tests: real sockets, real HTTP clients, real engine.

These pin the satellite guarantees: concurrent batched answers bit-identical
to direct ``engine.search``, deadline errors that leave the connection loop
alive, admission control under overload, ``/stats`` agreeing with the
``shard-stats``/``index-stats`` CLI, and graceful drain of in-flight work.
"""

from __future__ import annotations

import concurrent.futures
import io
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.index.storage import save_collection
from repro.server import ServerConfig

from harness import RunningServer, make_engine

QUERIES = [
    ("'usability'", 3),
    ("'usability' AND 'software'", 5),
    ("'testing' OR 'efficient'", 2),
    ("dist('usability', 'software', 8)", 4),
    ("'interface' AND ('evaluation' OR 'usability')", 5),
    ("'software' OR 'testing'", 1),
]


@pytest.fixture(scope="module")
def engine(server_collection):
    engine = make_engine(server_collection)
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def running(engine):
    config = ServerConfig(max_linger_ms=25.0)  # generous: force coalescing
    with RunningServer(engine, config) as server:
        yield server


def served_key(payload: dict) -> list[tuple[int, float]]:
    return [(row["node_id"], row["score"]) for row in payload["results"]]


def direct_key(results) -> list[tuple[int, float]]:
    # json round-trips floats through repr, which is exact for Python floats,
    # so comparing the parsed values IS a bit-identical score comparison.
    return [
        (result.node_id, json.loads(json.dumps(result.score)))
        for result in results
    ]


# --------------------------------------------------------------- equivalence
def test_concurrent_batched_results_bit_identical_to_direct_search(
    running, engine
):
    """Many clients at once; every answer equals a direct engine.search."""
    jobs = QUERIES * 3

    def fetch(job):
        text, top_k = job
        return running.request(
            "POST", "/search", body={"q": text, "top_k": top_k}
        )

    with concurrent.futures.ThreadPoolExecutor(max_workers=len(jobs)) as pool:
        responses = list(pool.map(fetch, jobs))

    for (text, top_k), (status, payload) in zip(jobs, responses):
        assert status == 200, payload
        assert payload["results"], text  # planted tokens: never empty
        direct = engine.search(text, top_k=top_k)
        assert served_key(payload) == direct_key(direct), text
        assert payload["total_matches"] == direct.total_matches
        assert payload["top_k"] == top_k

    # The 25 ms linger must have coalesced at least some of the burst.
    _, stats = running.request("GET", "/stats")
    batching = stats["server"]["batching"]
    assert batching["batched_requests"] >= len(jobs)
    assert batching["max_batch_size_seen"] >= 2


def test_get_and_post_agree(running):
    status_get, via_get = running.request(
        "GET", "/search?q=%27usability%27%20AND%20%27software%27&top_k=4"
    )
    status_post, via_post = running.request(
        "POST", "/search", body={"q": "'usability' AND 'software'", "top_k": 4}
    )
    assert status_get == status_post == 200
    assert served_key(via_get) == served_key(via_post)


def test_search_payload_reports_engine_and_language(running):
    status, payload = running.request(
        "POST", "/search", body={"q": "'usability'", "top_k": 2}
    )
    assert status == 200
    assert payload["language_class"].startswith("BOOL")
    assert payload["engine"] in ("bool", "ppred")
    assert payload["elapsed_ms"] >= 0.0
    for row in payload["results"]:
        assert set(row) == {"node_id", "score", "preview"}


# ------------------------------------------------- error paths, keep-alive
def test_bad_query_is_400_and_connection_survives(running):
    conn = running.connect()
    try:
        status, payload = running.request(
            "POST", "/search", body={"q": "'unterminated"}, connection=conn
        )
        assert status == 400
        assert payload["error"]["code"] == "query_error"
        # Same socket, next request: the connection loop must still be alive.
        status, payload = running.request(
            "POST", "/search", body={"q": "'usability'", "top_k": 1}, connection=conn
        )
        assert status == 200
    finally:
        conn.close()


def test_validation_errors_are_400(running):
    for body in [
        {},  # missing q
        {"q": "'usability'", "top_k": 0},
        {"q": "'usability'", "top_k": "many"},
        {"q": "'usability'", "top_k": 10**9},  # above max_top_k
        {"q": "'usability'", "language": "sql"},
        {"q": "'usability'", "engine": "warp"},
        {"q": "'usability'", "timeout_ms": -5},
    ]:
        status, payload = running.request("POST", "/search", body=body)
        assert status == 400, body
        assert "error" in payload


def test_unknown_route_404_and_wrong_method_405(running):
    status, payload = running.request("GET", "/nope")
    assert status == 404
    status, payload = running.request("POST", "/health")
    assert status == 405


def test_health_reports_version_and_collection(running, engine):
    status, payload = running.request("GET", "/health")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["version"] == repro.__version__
    assert payload["collection"] == engine.collection.name
    assert payload["shards"] == 1


# ------------------------------------------------------------------ deadlines
class SlowEngine:
    """Delegate to a real engine, but sleep inside every evaluation."""

    def __init__(self, inner, delay_seconds: float) -> None:
        self._inner = inner
        self._delay = delay_seconds

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def search_many(self, queries, **kwargs):
        time.sleep(self._delay)
        return self._inner.search_many(queries, **kwargs)

    def search(self, query, **kwargs):
        time.sleep(self._delay)
        return self._inner.search(query, **kwargs)


def test_deadline_exceeded_is_504_and_connection_survives(server_collection):
    inner = make_engine(server_collection)
    try:
        slow = SlowEngine(inner, delay_seconds=0.4)
        with RunningServer(slow, ServerConfig()) as server:
            conn = server.connect()
            try:
                status, payload = server.request(
                    "POST",
                    "/search",
                    body={"q": "'usability'", "timeout_ms": 50},
                    connection=conn,
                )
                assert status == 504
                assert payload["error"]["code"] == "deadline_exceeded"
                # The same keep-alive socket must answer the next request
                # even though the slow evaluation is still in flight.
                status, payload = server.request(
                    "GET", "/health", connection=conn
                )
                assert status == 200
            finally:
                conn.close()
    finally:
        inner.close()


# ----------------------------------------------------------------- admission
def test_admission_control_returns_429_under_overload(server_collection):
    inner = make_engine(server_collection)
    try:
        slow = SlowEngine(inner, delay_seconds=0.8)
        config = ServerConfig(max_inflight=1, max_linger_ms=0.0)
        with RunningServer(slow, config) as server:
            with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
                first = pool.submit(
                    server.request, "POST", "/search", {"q": "'usability'"}
                )
                time.sleep(0.25)  # let the first request occupy the slot
                status, payload = server.request(
                    "POST", "/search", body={"q": "'software'"}
                )
                assert status == 429
                assert payload["error"]["code"] == "overloaded"
                status, _ = first.result(timeout=30)
                assert status == 200  # the admitted request still completes
            # The refusal is immediate and the socket is answered, never hung.
            _, stats = server.request("GET", "/stats")
            assert stats["server"]["requests"]["by_status"]["429"] == 1
    finally:
        inner.close()


# -------------------------------------------------------------- observability
def test_stats_latency_and_access_log(server_collection):
    engine = make_engine(server_collection)
    log = io.StringIO()
    try:
        with RunningServer(engine, ServerConfig(access_log=log)) as server:
            for _ in range(3):
                server.request("POST", "/search", body={"q": "'usability'"})
            status, stats = server.request("GET", "/stats")
        assert status == 200
        search_latency = stats["server"]["latency"]["/search"]
        assert search_latency["count"] == 3
        assert search_latency["p50_ms"] > 0.0
        assert stats["server"]["requests"]["total"] >= 3
        assert stats["version"] == repro.__version__
        # JSONL access log: one valid JSON object per request, in order.
        lines = [line for line in log.getvalue().splitlines() if line]
        assert len(lines) >= 4  # 3 searches + /stats itself may lag a line
        entry = json.loads(lines[0])
        assert entry["method"] == "POST"
        assert entry["path"] == "/search"
        assert entry["status"] == 200
        assert entry["latency_ms"] >= 0.0
    finally:
        engine.close()


def test_stats_matches_shard_stats_cli(server_collection, tmp_path, capsys):
    """/stats must agree with what the shard-stats CLI prints."""
    saved = tmp_path / "collection.json"
    save_collection(server_collection, saved)
    engine = make_engine(server_collection, shards=2)
    try:
        with RunningServer(engine, ServerConfig()) as server:
            _, stats = server.request("GET", "/stats")
    finally:
        engine.close()
    served_rows = stats["engine"]["shard_stats"]
    assert stats["engine"]["shards"] == 2

    assert main(["shard-stats", str(saved), "--shards", "2"]) == 0
    out = capsys.readouterr().out
    cli_rows = [
        [int(cell) for cell in re.findall(r"[\d,]+", line)[:5]]
        for line in out.splitlines()
        if re.match(r"\s+\d+\s+\d+", line)
    ]
    assert len(cli_rows) == len(served_rows) == 2
    for cli_row, served in zip(cli_rows, served_rows):
        assert cli_row[0] == served["shard"]
        assert cli_row[1] == served["nodes"]
        assert cli_row[2] == served["tokens"]
        assert cli_row[3] == served["postings"]
        assert cli_row[4] == served["positions"]


def test_stats_packed_estimate_matches_index_stats_cli(
    server_collection, tmp_path, capsys
):
    saved = tmp_path / "collection.json"
    save_collection(server_collection, saved)
    engine = make_engine(server_collection)
    try:
        with RunningServer(engine, ServerConfig()) as server:
            _, stats = server.request("GET", "/stats")
    finally:
        engine.close()

    assert main(["index-stats", str(saved)]) == 0
    out = capsys.readouterr().out
    nodes = int(re.search(r"nodes\s+:\s+(\d+)", out).group(1))
    packed = int(
        re.search(r"packed v4\s+:\s+([\d,]+) bytes", out).group(1).replace(",", "")
    )
    assert stats["engine"]["nodes"] == nodes
    assert stats["engine"]["packed_bytes_estimate"] == packed


# -------------------------------------------------------------- graceful drain
def test_shutdown_drains_inflight_request(server_collection):
    inner = make_engine(server_collection)
    try:
        slow = SlowEngine(inner, delay_seconds=0.5)
        server = RunningServer(slow, ServerConfig(max_linger_ms=0.0))
        with server:
            with concurrent.futures.ThreadPoolExecutor(max_workers=1) as pool:
                inflight = pool.submit(
                    server.request, "POST", "/search", {"q": "'usability'", "top_k": 2}
                )
                time.sleep(0.2)  # request is now on the engine thread
                server.shutdown()  # returns only once drained
                status, payload = inflight.result(timeout=30)
        # The in-flight request was answered, not cut.
        assert status == 200
        assert payload["results"]
    finally:
        inner.close()


def test_serve_http_subprocess_sigterm_exits_zero(server_collection, tmp_path):
    """The deployable artifact contract: SIGTERM => drain, report, exit 0."""
    saved = tmp_path / "collection.json"
    save_collection(server_collection, saved)
    log_path = tmp_path / "access.jsonl"
    repo_src = str(Path(__file__).resolve().parents[2] / "src")
    env = dict(os.environ, PYTHONPATH=repo_src, PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-c",
            "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
            "serve-http",
            str(saved),
            "--port",
            "0",
            "--access-log",
            str(log_path),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r" on [\d.]+:(\d+) ", banner)
        assert match, f"unexpected banner: {banner!r}"
        port = int(match.group(1))

        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        conn.request("GET", "/search?q=%27usability%27&top_k=2")
        response = conn.getresponse()
        body = json.loads(response.read())
        conn.close()
        assert response.status == 200
        assert body["results"]

        proc.send_signal(signal.SIGTERM)
        stdout, _ = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0
    assert "drained; served" in stdout
    entries = [
        json.loads(line)
        for line in log_path.read_text().splitlines()
        if line.strip()
    ]
    assert any(entry["path"] == "/search" for entry in entries)
