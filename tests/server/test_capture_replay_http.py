"""Capture at the server, replay over HTTP, verify against direct search.

The full observability round trip of ``--capture``: serve real HTTP
traffic with a :class:`WorkloadCapture` attached, load the capture file
back, and replay it through :class:`HttpTarget` against the same live
server -- every replayed answer bit-identical to a direct, uncached
``engine.search`` on a reference engine built from the same collection.
"""

from __future__ import annotations

from harness import RunningServer, make_engine

from repro.bench.capture import (
    WorkloadCapture,
    load_workload,
    query_pool_from_collection,
    synthetic_zipf_workload,
)
from repro.bench.replay import HttpTarget, replay_workload
from repro.server import ServerConfig


def test_http_capture_then_replay_is_bit_identical(server_collection, tmp_path):
    capture_path = tmp_path / "captured.jsonl"
    pool = query_pool_from_collection(server_collection, size=10)
    workload = synthetic_zipf_workload(pool, count=120, skew=1.0, seed=11)

    engine = make_engine(server_collection, cache_size=64)
    capture = WorkloadCapture(capture_path)
    config = ServerConfig(capture=capture)
    with RunningServer(engine, config) as server:
        target = HttpTarget(f"http://127.0.0.1:{server.port}")
        for record in workload:  # live traffic the capture samples
            target.search(record)

        records = load_workload(capture_path)
        assert len(records) >= 100
        assert all(record["request_id"] for record in records)
        assert all(record["elapsed_ms"] is not None for record in records)
        assert [record["q"] for record in records] == [
            record["q"] for record in workload
        ]

        reference = make_engine(server_collection)  # uncached, direct
        try:
            report = replay_workload(records, target, reference, warm_passes=1)
        finally:
            reference.close()
    capture.close()
    engine.close()

    assert report["records"] == len(records) >= 100
    assert report["verified"] is True
    assert report["verify_mismatches"] == 0
    assert report["target"] == "http"
    assert report["latency_ms"]["p50"] > 0
    assert report["measure_hit_rate"] == 1.0  # verify + warm filled the cache


def test_capture_sees_only_search_traffic(server_collection, tmp_path):
    capture_path = tmp_path / "only-search.jsonl"
    engine = make_engine(server_collection, cache_size=16)
    capture = WorkloadCapture(capture_path)
    config = ServerConfig(capture=capture)
    with RunningServer(engine, config) as server:
        server.request("GET", "/health")
        server.request("GET", "/stats")
        status, _ = server.request("GET", "/search?q=%27software%27&top_k=5")
        assert status == 200
    capture.close()
    engine.close()
    records = load_workload(capture_path)
    assert len(records) == 1
    assert records[0]["q"] == "'software'"
    assert records[0]["top_k"] == 5
