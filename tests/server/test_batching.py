"""Unit tests for the micro-batching dispatcher.

Everything here drives :class:`BatchingDispatcher` directly on an asyncio
loop -- no sockets -- so the coalescing, widest-k narrowing, failure
isolation and deadline semantics are pinned down independently of the HTTP
layer.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.exceptions import UnsupportedQueryError
from repro.server.batching import (
    BatchingDispatcher,
    DeadlineExceeded,
    DispatcherClosed,
)

from harness import make_engine

QUERIES = [
    "'usability'",
    "'usability' AND 'software'",
    "'testing' OR 'efficient'",
    "dist('usability', 'software', 8)",
    "'interface' AND ('evaluation' OR 'usability')",
    "'software'",
]


@pytest.fixture(scope="module")
def engine(server_collection):
    engine = make_engine(server_collection)
    yield engine
    engine.close()


def run(coro):
    return asyncio.run(coro)


def results_key(results):
    """The equivalence triple: ids, exact scores, order."""
    return [(r.node_id, r.score) for r in results]


def test_concurrent_submits_coalesce_into_one_batch(engine):
    async def main():
        dispatcher = BatchingDispatcher(engine, max_batch_size=32, max_linger_ms=200.0)
        dispatcher.start()
        try:
            queries = [engine.parse(text) for text in QUERIES]
            answers = await asyncio.gather(
                *(dispatcher.submit(query, top_k=5) for query in queries)
            )
        finally:
            await dispatcher.stop()
        return answers, dispatcher.stats()

    answers, stats = run(main())
    # All six submits land within the linger window: exactly one engine call.
    assert stats["batches"] == 1
    assert stats["batched_requests"] == len(QUERIES)
    assert stats["max_batch_size_seen"] == len(QUERIES)
    for text, answer in zip(QUERIES, answers):
        direct = engine.search(text, top_k=5)
        assert len(results_key(answer)) > 0  # planted tokens: never empty
        assert results_key(answer) == results_key(direct)


def test_mixed_top_k_narrows_each_answer_exactly(engine):
    """The batch runs at the widest k; every caller gets its own exact cut."""
    ks = [1, 3, 7, None, 2]

    async def main():
        dispatcher = BatchingDispatcher(engine, max_batch_size=32, max_linger_ms=200.0)
        dispatcher.start()
        try:
            query = engine.parse("'usability' OR 'software'")
            return await asyncio.gather(
                *(dispatcher.submit(query, top_k=k) for k in ks)
            )
        finally:
            await dispatcher.stop()

    answers = run(main())
    for k, answer in zip(ks, answers):
        direct = engine.search("'usability' OR 'software'", top_k=k)
        assert results_key(answer) == results_key(direct)
        assert answer.total_matches == direct.total_matches


def test_max_batch_size_splits_batches(engine):
    async def main():
        dispatcher = BatchingDispatcher(engine, max_batch_size=2, max_linger_ms=200.0)
        dispatcher.start()
        try:
            queries = [engine.parse(text) for text in QUERIES]
            await asyncio.gather(
                *(dispatcher.submit(query, top_k=3) for query in queries)
            )
        finally:
            await dispatcher.stop()
        return dispatcher.stats()

    stats = run(main())
    assert stats["max_batch_size_seen"] <= 2
    assert stats["batches"] >= 3


def test_bad_query_does_not_fail_batch_neighbours(engine):
    """A query outside the forced engine's subset fails alone; its batch
    neighbours are retried individually and still answer correctly."""
    good_text = "'usability' AND 'software'"
    bad_text = "NOT 'usability'"  # PPRED cannot evaluate free-standing negation

    async def main():
        dispatcher = BatchingDispatcher(engine, max_batch_size=32, max_linger_ms=200.0)
        dispatcher.start()
        try:
            good = engine.parse(good_text)
            bad = engine.parse(bad_text)
            return await asyncio.gather(
                dispatcher.submit(good, top_k=5, engine_choice="ppred"),
                dispatcher.submit(bad, top_k=5, engine_choice="ppred"),
                return_exceptions=True,
            ), dispatcher.stats()
        finally:
            await dispatcher.stop()

    (good_answer, bad_answer), stats = run(main())
    assert results_key(good_answer) == results_key(
        engine.search(good_text, engine="ppred", top_k=5)
    )
    assert isinstance(bad_answer, UnsupportedQueryError)
    assert stats["individual_retries"] >= 2


def test_mixed_engine_choices_run_individually_and_correctly(engine):
    async def main():
        dispatcher = BatchingDispatcher(engine, max_batch_size=32, max_linger_ms=200.0)
        dispatcher.start()
        try:
            return await asyncio.gather(
                dispatcher.submit(engine.parse("'usability'"), top_k=4, engine_choice="bool"),
                dispatcher.submit(engine.parse("'software'"), top_k=4, engine_choice="ppred"),
            )
        finally:
            await dispatcher.stop()

    bool_answer, ppred_answer = run(main())
    assert results_key(bool_answer) == results_key(
        engine.search("'usability'", engine="bool", top_k=4)
    )
    assert results_key(ppred_answer) == results_key(
        engine.search("'software'", engine="ppred", top_k=4)
    )


def test_expired_deadline_raises_deadline_exceeded(engine):
    async def main():
        dispatcher = BatchingDispatcher(engine, max_batch_size=32, max_linger_ms=50.0)
        dispatcher.start()
        try:
            query = engine.parse("'usability'")
            # A deadline already in the past: either the submit wait or the
            # in-queue expiry check must raise DeadlineExceeded.
            with pytest.raises(DeadlineExceeded):
                await dispatcher.submit(
                    query, top_k=5, deadline=time.monotonic() - 1.0
                )
        finally:
            await dispatcher.stop()

    run(main())


def test_stop_drains_queued_requests_then_rejects_new_ones(engine):
    async def main():
        dispatcher = BatchingDispatcher(engine, max_batch_size=32, max_linger_ms=500.0)
        dispatcher.start()
        query = engine.parse("'usability'")
        pending = asyncio.get_running_loop().create_task(
            dispatcher.submit(query, top_k=3)
        )
        await asyncio.sleep(0)  # let the submit enqueue before draining
        await dispatcher.stop()
        answer = await pending  # queued before stop: still answered
        with pytest.raises(DispatcherClosed):
            await dispatcher.submit(query, top_k=3)
        return answer

    answer = run(main())
    assert results_key(answer) == results_key(engine.search("'usability'", top_k=3))


def test_constructor_validates_parameters(engine):
    with pytest.raises(ValueError):
        BatchingDispatcher(engine, max_batch_size=0)
    with pytest.raises(ValueError):
        BatchingDispatcher(engine, max_linger_ms=-1.0)
