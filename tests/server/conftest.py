"""Fixtures for the HTTP server tests."""

from __future__ import annotations

import pytest

from repro.corpus.synthetic import generate_inex_like_collection


@pytest.fixture(scope="session")
def server_collection():
    """A deterministic corpus large enough for non-trivial rankings."""
    return generate_inex_like_collection(
        num_nodes=240, tokens_per_node=60, pos_per_entry=2
    )
