"""Unit tests for the bounded HTTP/1.1 parser and response writer."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.server.http import (
    MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    ProtocolError,
    error_payload,
    read_request,
    render_response,
)


def parse(raw: bytes):
    """Feed raw bytes to the parser the way the server's stream would."""

    async def run():
        reader = asyncio.StreamReader(limit=2 * MAX_HEADER_BYTES)
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


def test_get_request_with_query_string():
    request = parse(b"GET /search?q=%27alpha%27&top_k=3 HTTP/1.1\r\nHost: x\r\n\r\n")
    assert request.method == "GET"
    assert request.path == "/search"
    assert request.param("q") == "'alpha'"
    assert request.param("top_k") == "3"
    assert request.keep_alive  # HTTP/1.1 default


def test_post_request_with_json_body():
    body = json.dumps({"q": "'beta'", "top_k": 5}).encode()
    raw = (
        b"POST /search HTTP/1.1\r\nContent-Length: "
        + str(len(body)).encode()
        + b"\r\n\r\n"
        + body
    )
    request = parse(raw)
    assert request.method == "POST"
    assert request.json_body() == {"q": "'beta'", "top_k": 5}


def test_clean_eof_returns_none():
    assert parse(b"") is None


def test_connection_close_header_disables_keep_alive():
    request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
    assert not request.keep_alive


def test_http_10_defaults_to_close_unless_keep_alive():
    assert not parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive
    assert parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive


def test_malformed_request_line_raises_400():
    with pytest.raises(ProtocolError) as excinfo:
        parse(b"GARBAGE\r\n\r\n")
    assert excinfo.value.status == 400


def test_unsupported_version_raises_400():
    with pytest.raises(ProtocolError) as excinfo:
        parse(b"GET / HTTP/2.0\r\n\r\n")
    assert excinfo.value.status == 400


def test_truncated_request_raises_400():
    with pytest.raises(ProtocolError) as excinfo:
        parse(b"GET / HTTP/1.1\r\nHost:")
    assert excinfo.value.status == 400


def test_truncated_body_raises_400():
    with pytest.raises(ProtocolError) as excinfo:
        parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
    assert excinfo.value.status == 400


def test_chunked_transfer_encoding_raises_501():
    with pytest.raises(ProtocolError) as excinfo:
        parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
    assert excinfo.value.status == 501


def test_oversized_header_block_raises_431():
    filler = b"X-Filler: " + b"a" * MAX_HEADER_BYTES + b"\r\n"
    with pytest.raises(ProtocolError) as excinfo:
        parse(b"GET / HTTP/1.1\r\n" + filler + b"\r\n")
    assert excinfo.value.status == 431


def test_oversized_body_raises_413():
    raw = (
        b"POST / HTTP/1.1\r\nContent-Length: "
        + str(MAX_BODY_BYTES + 1).encode()
        + b"\r\n\r\n"
    )
    with pytest.raises(ProtocolError) as excinfo:
        parse(raw)
    assert excinfo.value.status == 413


def test_malformed_content_length_raises_400():
    with pytest.raises(ProtocolError) as excinfo:
        parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
    assert excinfo.value.status == 400


def test_non_object_json_body_rejected():
    body = b"[1, 2]"
    raw = (
        b"POST / HTTP/1.1\r\nContent-Length: "
        + str(len(body)).encode()
        + b"\r\n\r\n"
        + body
    )
    request = parse(raw)
    with pytest.raises(ProtocolError) as excinfo:
        request.json_body()
    assert excinfo.value.status == 400


def test_render_response_round_trips_floats_exactly():
    score = 0.1 + 0.2  # not exactly representable; repr round-trips
    raw = render_response(200, {"score": score})
    head, _, body = raw.partition(b"\r\n\r\n")
    assert f"Content-Length: {len(body)}".encode() in head
    assert json.loads(body)["score"] == score


def test_render_response_sets_connection_header():
    assert b"Connection: keep-alive" in render_response(200, {}, keep_alive=True)
    assert b"Connection: close" in render_response(200, {}, keep_alive=False)


def test_error_payload_shape():
    assert error_payload("nope", "why") == {
        "error": {"code": "nope", "message": "why"}
    }
