# repro query service -- stdlib-only, so the image is just Python + sources.
#
# Build:   docker build -t repro-server .
# Index:   docker run --rm -v "$PWD/docs:/docs" -v "$PWD/data:/data" \
#              repro-server index /docs -o /data/collection.json
# Serve:   docker run --rm -p 8080:8080 -v "$PWD/data:/data:ro" repro-server
#
# SIGTERM (docker stop) triggers the server's graceful drain: in-flight
# requests finish, a summary line is printed, and the process exits 0.

FROM python:3.12-slim

WORKDIR /app
COPY src/ src/

ENV PYTHONPATH=/app/src \
    PYTHONUNBUFFERED=1

EXPOSE 8080

# /health answers while serving and reports "draining" during shutdown.
HEALTHCHECK --interval=10s --timeout=3s --start-period=5s --retries=3 \
    CMD ["python", "-c", "import urllib.request; urllib.request.urlopen('http://127.0.0.1:8080/health', timeout=2)"]

ENTRYPOINT ["python", "-m", "repro.cli"]
CMD ["serve-http", "/data/collection.json", "--host", "0.0.0.0", "--port", "8080", "--access-log", "-"]
